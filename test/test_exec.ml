(* Tests for qs_exec: the deterministic domain pool — order preservation,
   seeded-sweep byte-identity across worker counts, submission-order
   reduction, per-domain resource isolation, exception propagation, nested
   submission detection, and stats accounting. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- map ------------------------------------------------------------- *)

let test_map_order () =
  List.iter
    (fun jobs ->
       Pool.with_pool ~jobs (fun p ->
           let arr = Array.init 257 (fun i -> i) in
           let out = Pool.map p (fun x -> x * x) arr in
           check_int (Printf.sprintf "length at jobs=%d" jobs) 257
             (Array.length out);
           Array.iteri
             (fun i v ->
                check_int (Printf.sprintf "slot %d at jobs=%d" i jobs) (i * i) v)
             out))
    [ 1; 2; 4 ]

let test_map_empty () =
  Pool.with_pool ~jobs:3 (fun p ->
      check_int "empty" 0 (Array.length (Pool.map p (fun x -> x) [||]));
      check_bool "empty list" true (Pool.map_list p (fun x -> x) [] = []))

let test_map_chunk_param () =
  Pool.with_pool ~jobs:2 (fun p ->
      let arr = Array.init 100 (fun i -> i) in
      List.iter
        (fun chunk ->
           let out = Pool.map ~chunk p (fun x -> x + 1) arr in
           check_int (Printf.sprintf "chunk=%d" chunk) 100 (Array.length out);
           Array.iteri (fun i v -> check_int "value" (i + 1) v) out)
        [ 1; 7; 100; 1000 ];
      Alcotest.check_raises "chunk 0"
        (Invalid_argument "Pool.map: chunk must be positive") (fun () ->
          ignore (Pool.map ~chunk:0 p (fun x -> x) arr)))

let test_create_bounds () =
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Pool.create: jobs must be in [1, 512]") (fun () ->
      ignore (Pool.create ~jobs:0 ()));
  Alcotest.check_raises "jobs 1000"
    (Invalid_argument "Pool.create: jobs must be in [1, 512]") (fun () ->
      ignore (Pool.create ~jobs:1000 ()))

(* ---- determinism ------------------------------------------------------ *)

(* A miniature Monte-Carlo kernel: enough RNG consumption per item that a
   stream mixup would show immediately. *)
let kernel rng x =
  let acc = ref (float_of_int x) in
  for _ = 1 to 50 do
    acc := !acc +. Rng.float rng 1.0
  done;
  !acc

let seeded_run ~jobs ~chunk seed n =
  Pool.with_pool ~jobs (fun p ->
      let rng = Rng.of_int seed in
      Pool.map_seeded ~chunk p ~rng kernel (Array.init n (fun i -> i)))

let test_map_seeded_identical () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:30
       ~name:"map_seeded byte-identical at jobs=1 and jobs=4"
       QCheck.(pair small_int (int_bound 200))
       (fun (seed, n) ->
          let n = n + 1 in
          let a = seeded_run ~jobs:1 ~chunk:(1 + (seed mod 5)) seed n in
          let b = seeded_run ~jobs:4 ~chunk:(1 + (n mod 7)) seed n in
          a = b))

let test_map_seeded_advances_rng () =
  (* map_seeded consumes one split per item off the caller's rng, the same
     way at every worker count, so downstream draws stay aligned. *)
  let tail jobs =
    Pool.with_pool ~jobs (fun p ->
        let rng = Rng.of_int 5 in
        let _ = Pool.map_seeded p ~rng kernel (Array.init 17 (fun i -> i)) in
        Rng.int64 rng)
  in
  Alcotest.(check int64) "same rng state after sweep" (tail 1) (tail 3)

let test_fold_submission_order () =
  List.iter
    (fun jobs ->
       Pool.with_pool ~jobs (fun p ->
           let arr = Array.init 64 (fun i -> i) in
           let s =
             Pool.fold ~chunk:3 p ~f:string_of_int
               ~reduce:(fun acc x -> acc ^ "," ^ x)
               ~init:"" arr
           in
           let expected =
             Array.fold_left
               (fun acc x -> acc ^ "," ^ string_of_int x)
               "" arr
           in
           Alcotest.(check string)
             (Printf.sprintf "reduction order at jobs=%d" jobs) expected s))
    [ 1; 4 ]

(* ---- per-domain resources --------------------------------------------- *)

let test_per_domain_isolation () =
  let counter = Atomic.make 0 in
  let resource = Pool.per_domain (fun () -> Atomic.fetch_and_add counter 1) in
  Pool.with_pool ~jobs:4 (fun p ->
      (* Slow tasks so several domains actually participate. *)
      let observations =
        Pool.map ~chunk:1 p
          (fun _ ->
             let r = Pool.get resource in
             let x = ref 0 in
             for i = 1 to 20_000 do
               x := !x + i
             done;
             ignore !x;
             ((Domain.self () :> int), r))
          (Array.init 64 (fun i -> i))
      in
      (* Within one domain, always the same instance. *)
      let by_domain = Hashtbl.create 8 in
      Array.iter
        (fun (d, r) ->
           match Hashtbl.find_opt by_domain d with
           | None -> Hashtbl.replace by_domain d r
           | Some r' ->
               check_int (Printf.sprintf "domain %d reuses its instance" d) r' r)
        observations;
      (* Never more instances than domains. *)
      check_bool "at most jobs instances" true (Atomic.get counter <= 4))

(* ---- failure handling -------------------------------------------------- *)

exception Boom

let test_exception_propagates () =
  Pool.with_pool ~jobs:3 (fun p ->
      let raised =
        try
          ignore
            (Pool.map ~chunk:1 p
               (fun x -> if x = 13 then raise Boom else x)
               (Array.init 32 (fun i -> i)));
          false
        with Boom -> true
      in
      check_bool "task exception re-raised in caller" true raised;
      (* The pool survives a failed sweep. *)
      let out = Pool.map p (fun x -> x + 1) [| 1; 2; 3 |] in
      check_bool "pool usable after failure" true (out = [| 2; 3; 4 |]))

let test_nested_submission_rejected () =
  Pool.with_pool ~jobs:2 (fun p ->
      let raised =
        try
          ignore
            (Pool.map p
               (fun x -> Array.length (Pool.map p (fun y -> y) [| x |]))
               [| 1; 2; 3 |]);
          false
        with Invalid_argument _ -> true
      in
      check_bool "nested submission raises" true raised)

let test_shutdown_rejects () =
  let p = Pool.create ~jobs:2 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  let raised =
    try
      ignore (Pool.map p (fun x -> x) [| 1 |]);
      false
    with Invalid_argument _ -> true
  in
  check_bool "shut pool rejects work" true raised

(* ---- stats ------------------------------------------------------------- *)

let test_stats_accounting () =
  Pool.with_pool ~jobs:2 (fun p ->
      let arr = Array.init 40 (fun i -> i) in
      ignore (Pool.map ~chunk:4 p (fun x -> x) arr);
      ignore (Pool.map ~chunk:4 p (fun x -> x) arr);
      let s = Pool.stats p in
      check_int "jobs" 2 s.Pool.jobs;
      check_int "calls" 2 s.Pool.calls;
      check_int "chunks" 20 s.Pool.chunks;
      check_int "per-domain chunks sum to total" 20
        (Array.fold_left (fun acc (d : Pool.domain_stats) -> acc + d.Pool.chunks)
           0 s.Pool.domains);
      check_bool "wall non-negative" true (s.Pool.wall >= 0.);
      let rendered = Format.asprintf "%a" Pool.pp_stats s in
      check_bool "stats render mentions jobs" true
        (String.length rendered > 0);
      Pool.reset_stats p;
      let s = Pool.stats p in
      check_int "reset calls" 0 s.Pool.calls;
      check_int "reset chunks" 0 s.Pool.chunks)

(* The satellite bugfix: a pool reused across successive map calls must
   keep each call's busy/wait/chunk deltas separable from the cumulative
   totals ([Pool.last_sweep] is the per-call reset marker). Chunk deltas
   are exact at any width; busy/wait deltas are non-negative and bounded
   by the totals (a worker's busy tail can land after the completion
   signal), and exact at jobs=1 where everything runs inline. *)
let test_last_sweep_deltas () =
  let sum_busy (ds : Pool.domain_stats array) =
    Array.fold_left (fun a (d : Pool.domain_stats) -> a +. d.Pool.busy) 0. ds
  in
  List.iter
    (fun jobs ->
       Pool.with_pool ~jobs (fun p ->
           check_bool "no sweep yet" true (Pool.last_sweep p = None);
           let arr = Array.init 64 (fun i -> i) in
           let chunk_deltas = ref 0 and busy_deltas = ref 0. in
           for call = 1 to 4 do
             ignore (Pool.map ~chunk:2 p (fun x -> x * x) arr);
             match Pool.last_sweep p with
             | None -> Alcotest.fail "last_sweep None after a sweep"
             | Some d ->
                 check_int "delta calls" 1 d.Pool.calls;
                 check_int "delta chunks" 32 d.Pool.chunks;
                 check_bool "delta wall non-negative" true (d.Pool.wall >= 0.);
                 check_int "per-domain delta chunks sum to sweep chunks" 32
                   (Array.fold_left
                      (fun a (ds : Pool.domain_stats) -> a + ds.Pool.chunks)
                      0 d.Pool.domains);
                 Array.iter
                   (fun (ds : Pool.domain_stats) ->
                      check_bool "delta busy non-negative" true
                        (ds.Pool.busy >= 0.);
                      check_bool "delta wait non-negative" true
                        (ds.Pool.wait >= 0.))
                   d.Pool.domains;
                 chunk_deltas := !chunk_deltas + d.Pool.chunks;
                 busy_deltas := !busy_deltas +. sum_busy d.Pool.domains;
                 let cum = Pool.stats p in
                 check_int "cumulative calls" call cum.Pool.calls;
                 check_bool "delta busy bounded by totals" true
                   (sum_busy d.Pool.domains
                    <= sum_busy cum.Pool.domains +. 1e-9)
           done;
           let cum = Pool.stats p in
           check_int "chunk deltas sum to total" cum.Pool.chunks !chunk_deltas;
           check_bool "busy deltas bounded by total" true
             (!busy_deltas <= sum_busy cum.Pool.domains +. 1e-6);
           if jobs = 1 then
             check_bool "busy deltas sum to total at jobs=1" true
               (Float.abs (!busy_deltas -. sum_busy cum.Pool.domains) < 1e-6);
           Pool.reset_stats p;
           check_bool "reset clears last_sweep" true
             (Pool.last_sweep p = None)))
    [ 1; 4 ]

let () =
  Alcotest.run "qs_exec"
    [ ("pool",
       [ Alcotest.test_case "map preserves order" `Quick test_map_order;
         Alcotest.test_case "map on empty input" `Quick test_map_empty;
         Alcotest.test_case "chunk parameter" `Quick test_map_chunk_param;
         Alcotest.test_case "create bounds" `Quick test_create_bounds;
         Alcotest.test_case "fold reduces in submission order" `Quick
           test_fold_submission_order ]);
      ("determinism",
       [ Alcotest.test_case "map_seeded identical across jobs" `Quick
           test_map_seeded_identical;
         Alcotest.test_case "map_seeded advances caller rng stably" `Quick
           test_map_seeded_advances_rng ]);
      ("resources",
       [ Alcotest.test_case "per_domain isolation" `Quick
           test_per_domain_isolation ]);
      ("failures",
       [ Alcotest.test_case "exceptions propagate" `Quick
           test_exception_propagates;
         Alcotest.test_case "nested submission rejected" `Quick
           test_nested_submission_rejected;
         Alcotest.test_case "shutdown" `Quick test_shutdown_rejects ]);
      ("stats",
       [ Alcotest.test_case "accounting" `Quick test_stats_accounting;
         Alcotest.test_case "last_sweep deltas" `Quick
           test_last_sweep_deltas ]) ]
