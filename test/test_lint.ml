(* Tests for qs_lint: the diagnostics framework, each analyzer firing on an
   injected violation (forged valley route, looped AS path, wrong-origin
   announcement, over-long ROA, ...), and the clean-scenario pass. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let asn = Asn.of_int
let pfx = Prefix.of_string

let codes diags = List.map (fun d -> d.Diag.rule.Diag.code) diags

let fires code diags = List.mem code (codes diags)

let stub_info name =
  { As_graph.name; tier = As_graph.Stub; hosting_weight = 0. }

(* A small valley-free-checkable graph: 10 is 11's provider, 10 -- 20 peer,
   20 is 21's provider, 6 is a second provider of 11. *)
let diamond () =
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info "")) [ 6; 10; 11; 20; 21 ];
  As_graph.add_provider_customer g ~provider:(asn 10) ~customer:(asn 11);
  As_graph.add_peering g (asn 10) (asn 20);
  As_graph.add_provider_customer g ~provider:(asn 20) ~customer:(asn 21);
  As_graph.add_provider_customer g ~provider:(asn 6) ~customer:(asn 11);
  g

(* ---- Diag ------------------------------------------------------------ *)

let some_rule =
  { Diag.code = "QS999"; slug = "test-rule"; severity = Diag.Warn;
    doc = "only for tests"; explain = "a throwaway rule for diag tests" }

let test_diag_exit_code () =
  let w = Diag.make some_rule "a warning" in
  let e = Diag.make { some_rule with Diag.severity = Diag.Error } "an error" in
  check_int "no diags" 0 (Diag.exit_code ~fail_on:Diag.Warn []);
  check_int "warn under error policy" 0 (Diag.exit_code ~fail_on:Diag.Error [ w ]);
  check_int "warn under warn policy" 1 (Diag.exit_code ~fail_on:Diag.Warn [ w ]);
  check_int "error under error policy" 1 (Diag.exit_code ~fail_on:Diag.Error [ w; e ])

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_diag_json () =
  let d =
    Diag.make some_rule ~context:[ ("k", "va\"lue") ] "a \"quoted\"\nmessage"
  in
  let s = Format.asprintf "%a" (fun ppf -> Diag.report_json ppf) [ d ] in
  check_bool "escapes quotes" true (contains ~needle:{|a \"quoted\"\nmessage|} s);
  check_bool "has code" true (contains ~needle:{|"code":"QS999"|} s);
  check_bool "has context" true (contains ~needle:{|"k":"va\"lue"|} s)

let test_rule_lookup () =
  check_bool "by code" true
    (match Lint.find_rule "QS001" with
     | Some r -> r.Diag.slug = "valley-violation"
     | None -> false);
  check_bool "by slug" true
    (match Lint.find_rule "valley-violation" with
     | Some r -> r.Diag.code = "QS001"
     | None -> false);
  check_bool "by combined id" true
    (match Lint.find_rule "QS001-valley-violation" with
     | Some r -> r.Diag.code = "QS001"
     | None -> false);
  check_bool "unknown" true (Lint.find_rule "QS000" = None);
  (* codes are unique *)
  let cs = List.map (fun r -> r.Diag.code) Lint.all_rules in
  check_int "codes unique" (List.length cs) (List.length (List.sort_uniq compare cs))

(* ---- Routing analyzers ---------------------------------------------- *)

let test_valley_route_fires () =
  let g = diamond () in
  (* 6 -> 11 -> 10: a provider-learned route exported uphill — the classic
     valley. Origin last, as on a Route.t. *)
  let route = Route.make (pfx "10.0.0.0/8") [ asn 6; asn 11; asn 10 ] in
  let diags = Routing_lint.check_route g route in
  check_bool "QS001 fires" true (fires "QS001" diags);
  (* the legitimate up-peer-down path is clean *)
  check_int "clean path" 0
    (List.length
       (Routing_lint.check_path g ~prefix:(pfx "10.0.0.0/8")
          [ asn 21; asn 20; asn 10; asn 11 ]))

let test_peer_peer_valley_fires () =
  let g = diamond () in
  (* peer-learned route exported across a second peering-ish hop: 21-20-10-11-6
     ends with 11 -> 6 uphill after a peering step *)
  let diags =
    Routing_lint.check_path g ~prefix:(pfx "10.0.0.0/8")
      [ asn 21; asn 20; asn 10; asn 11; asn 6 ]
  in
  check_bool "QS001 fires" true (fires "QS001" diags)

let test_looped_path_fires () =
  let g = diamond () in
  let diags =
    Routing_lint.check_path g ~prefix:(pfx "10.0.0.0/8")
      [ asn 10; asn 11; asn 10; asn 11 ]
  in
  check_bool "QS002 fires" true (fires "QS002" diags);
  check_bool "QS001 suppressed on loops" false (fires "QS001" diags)

let test_prepending_is_not_a_loop () =
  let g = diamond () in
  (* adjacent repeats are prepending: 11 announced with prepend 2 *)
  let diags =
    Routing_lint.check_path g ~prefix:(pfx "10.0.0.0/8")
      [ asn 10; asn 11; asn 11; asn 11 ]
  in
  check_int "clean" 0 (List.length diags)

let test_next_hop_inconsistency_fires () =
  let neighbor a b = Asn.to_int a + 1 = Asn.to_int b in
  let routed a = Asn.to_int a <> 3 in
  (* 1 forwards to its neighbor 2: fine. 2 forwards to unrouted 3: fires.
     4 forwards to non-adjacent 6: fires. *)
  let next_hop a =
    match Asn.to_int a with
    | 1 -> Some (asn 2)
    | 2 -> Some (asn 3)
    | 4 -> Some (asn 6)
    | _ -> None
  in
  let diags =
    Routing_lint.check_next_hops ~neighbor ~next_hop ~routed
      [ asn 1; asn 2; asn 4; asn 5 ]
  in
  check_int "two findings" 2 (List.length diags);
  check_bool "QS003 fires" true (fires "QS003" diags)

let test_computed_table_is_clean () =
  let g = diamond () in
  let ix = As_graph.Indexed.of_graph g in
  let table =
    Propagate.compute ix [ Announcement.originate (asn 11) (pfx "10.0.0.0/8") ]
  in
  check_int "clean table" 0 (List.length (Routing_lint.check_table g table))

(* ---- Topology analyzers --------------------------------------------- *)

let test_provider_cycle_fires () =
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info "")) [ 1; 2; 3 ];
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 2);
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 3);
  As_graph.add_provider_customer g ~provider:(asn 3) ~customer:(asn 1);
  let diags = Topology_lint.check_provider_acyclicity g in
  check_bool "QS103 fires" true (fires "QS103" diags);
  check_int "acyclic diamond clean" 0
    (List.length (Topology_lint.check_provider_acyclicity (diamond ())))

let test_disconnected_fires () =
  let g = As_graph.create () in
  As_graph.add_as g (asn 1) (stub_info "");
  As_graph.add_as g (asn 2) (stub_info "");
  check_bool "QS102 fires" true (fires "QS102" (Topology_lint.check_connectivity g));
  check_int "connected graph clean" 0
    (List.length (Topology_lint.check_connectivity (diamond ())))

let test_tier_sanity_fires () =
  let g = As_graph.create () in
  As_graph.add_as g (asn 1)
    { As_graph.name = "t1"; tier = As_graph.Tier1; hosting_weight = 0. };
  As_graph.add_as g (asn 2) (stub_info "stub-with-customer");
  As_graph.add_as g (asn 3) (stub_info "plain");
  (* Tier-1 with a provider, and a stub with a customer *)
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 1);
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 3);
  let diags = Topology_lint.check_tiers g in
  check_bool "QS104 fires" true (fires "QS104" diags);
  check_int "both findings" 2 (List.length diags)

let test_symmetry_clean () =
  check_int "generated graph symmetric" 0
    (List.length
       (Topology_lint.check_symmetry
          (Topo_gen.generate ~rng:(Rng.of_int 5) Topo_gen.small_params)))

(* ---- Addressing / RPKI analyzers ------------------------------------ *)

let small_addressing seed =
  let g = Topo_gen.generate ~rng:(Rng.of_int seed) Topo_gen.small_params in
  (g, Addressing.allocate ~rng:(Rng.of_int seed) g)

let test_wrong_origin_fires () =
  let _, addressing = small_addressing 21 in
  let p, owner = List.hd (Addressing.announced addressing) in
  let wrong = asn (Asn.to_int owner + 1) in
  let diags =
    Addressing_lint.check_announcement addressing (Announcement.originate wrong p)
  in
  check_bool "QS201 fires" true (fires "QS201" diags);
  check_int "honest announcement clean" 0
    (List.length
       (Addressing_lint.check_announcement addressing
          (Announcement.originate owner p)))

let test_unknown_prefix_fires () =
  let _, addressing = small_addressing 22 in
  let diags =
    Addressing_lint.check_announcement addressing
      (Announcement.originate (asn 1) (pfx "203.0.113.0/24"))
  in
  check_bool "QS201 fires" true (fires "QS201" diags)

let test_overlong_roa_fires () =
  let roa p max_length =
    { Rpki.roa_prefix = pfx p; max_length; authorized = asn 5 }
  in
  check_bool "max_length 40 fires QS202" true
    (fires "QS202" (Addressing_lint.check_roa (roa "10.0.0.0/16" 40)));
  check_bool "max_length below length fires QS202" true
    (fires "QS202" (Addressing_lint.check_roa (roa "10.0.0.0/16" 8)));
  check_int "exact-length ROA clean" 0
    (List.length (Addressing_lint.check_roa (roa "10.0.0.0/16" 16)));
  check_int "max_length 32 clean" 0
    (List.length (Addressing_lint.check_roa (roa "10.0.0.0/16" 32)))

let test_moas_conflict_fires () =
  let p = pfx "192.0.2.0/24" in
  let diags = Addressing_lint.check_origins [ (p, asn 1); (p, asn 2) ] in
  check_bool "QS203 fires" true (fires "QS203" diags);
  check_int "consistent listing clean" 0
    (List.length
       (Addressing_lint.check_origins [ (p, asn 1); (pfx "198.51.100.0/24", asn 2) ]))

let test_unrouted_relay_fires () =
  let _, addressing = small_addressing 23 in
  let relay =
    Relay.make ~nickname:"ghost" ~ip:(Ipv4.of_octets 240 0 0 1) ~asn:(asn 1)
      ~bandwidth:1000 ~flags:[ Relay.Guard ]
  in
  let diags = Addressing_lint.check_relays addressing [ relay ] in
  check_bool "QS204 fires" true (fires "QS204" diags)

(* ---- Scenario analyzers --------------------------------------------- *)

let test_dead_collector_peer_fires () =
  let g, addressing = small_addressing 24 in
  let ghost = asn 64999 in
  check_bool "ghost not in graph" false (As_graph.mem_as g ghost);
  let collector =
    { Collector.name = "rrc99";
      sessions =
        [ { Collector.id = { Update.collector = "rrc99"; peer = ghost };
            peer_ip = Ipv4.of_octets 192 0 2 1;
            feed = Collector.Full } ] }
  in
  let diags = Scenario_lint.check_collectors g addressing [ collector ] in
  check_bool "QS302 fires" true (fires "QS302" diags);
  check_bool "QS303 fires for the documentation IP" true (fires "QS303" diags)

let stream_update t =
  { Update.time = t;
    session = { Update.collector = "rrc00"; peer = asn 5 };
    kind = Update.Withdraw (pfx "203.0.113.0/24") }

let test_update_stream_hygiene_fires () =
  let late = Scenario_lint.check_update_stream ~duration:100.
      [ stream_update 10.; stream_update 150. ]
  in
  check_bool "QS304 fires past the horizon" true (fires "QS304" late);
  let backwards = Scenario_lint.check_update_stream ~duration:100.
      [ stream_update 50.; stream_update 20. ]
  in
  check_bool "QS304 fires on a backwards stream" true (fires "QS304" backwards)

let test_update_stream_hygiene_clean () =
  (* Boundary times (0 and the horizon itself) and ties are all legal. *)
  let diags = Scenario_lint.check_update_stream ~duration:100.
      [ stream_update 0.; stream_update 20.; stream_update 20.;
        stream_update 100. ]
  in
  check_int "QS304 silent on a clean stream" 0 (List.length diags)

(* ---- Static surface analyzers (QS401-404) ---------------------------- *)

let diamond_surface () =
  let g = diamond () in
  let ix = As_graph.Indexed.of_graph g in
  (g, ix, Static_surface.create ix)

(* The diamond's only announced prefix, originated at 11. *)
let surface_origin_of p =
  if Prefix.equal p (pfx "10.0.0.0/8") then Some (asn 11) else None

let surface_announce ~peer path =
  { Update.time = 1.;
    session = { Update.collector = "rrc00"; peer };
    kind = Update.Announce (Route.make (pfx "10.0.0.0/8") path) }

let test_qs401_fires () =
  let _, _, surface = diamond_surface () in
  (* A route heard at 21 whose path detours through 6: 6 hangs off the far
     downhill side, so no valley-free 21 <-> 11 walk can cross it. *)
  let diags =
    Surface_lint.check_stream surface ~origin_of:surface_origin_of
      [ surface_announce ~peer:(asn 21) [ asn 6; asn 11 ] ]
  in
  check_bool "QS401 fires" true (fires "QS401" diags);
  check_bool "names the escapee" true
    (List.exists
       (fun d ->
          List.assoc_opt "escapee" d.Diag.context
          = Some (Asn.to_string (asn 6)))
       diags)

let test_qs401_clean_and_skips () =
  let _, _, surface = diamond_surface () in
  let legit = surface_announce ~peer:(asn 21) [ asn 20; asn 10; asn 11 ] in
  (* prefixes the origin map does not know, and withdraws, are skipped *)
  let unknown =
    { (surface_announce ~peer:(asn 21) [ asn 6 ]) with
      Update.kind = Update.Announce (Route.make (pfx "192.0.2.0/24") [ asn 6 ]) }
  in
  let withdraw =
    { (surface_announce ~peer:(asn 21) [ asn 11 ]) with
      Update.kind = Update.Withdraw (pfx "10.0.0.0/8") }
  in
  check_int "clean stream" 0
    (List.length
       (Surface_lint.check_stream surface ~origin_of:surface_origin_of
          [ legit; unknown; withdraw ]))

let test_qs401_computed_table_clean () =
  (* What the real engine selects always sits inside the bound. *)
  let g, ix, surface = diamond_surface () in
  let table =
    Propagate.compute ix [ Announcement.originate (asn 11) (pfx "10.0.0.0/8") ]
  in
  check_int "converged table within bound" 0
    (List.length (Surface_lint.check_table surface g ~origin:(asn 11) table))

(* Two transit trees joined only through a shared customer: 1 and 2 both
   provide for 3; 4 hangs under 1 alone, 5 under 2 alone. Any 4 <-> 5 walk
   would have to climb back out of 3 after descending into it — a valley —
   so the pair is physically connected but policy-unreachable. *)
let stranded_surface () =
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info "")) [ 1; 2; 3; 4; 5 ];
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 3);
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 3);
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 4);
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 5);
  Static_surface.create (As_graph.Indexed.of_graph g)

let test_qs402_fires () =
  let surface = stranded_surface () in
  let diags =
    Surface_lint.check_pairs surface [ (asn 4, asn 5); (asn 4, asn 3) ]
  in
  check_bool "QS402 fires for the stranded pair" true (fires "QS402" diags);
  check_int "the reachable pair is clean" 1 (List.length diags)

let test_qs403_fires () =
  let surface = stranded_surface () in
  (* 5's forward closure is {5, 2, 3}: monitor 3 hears it, monitor 4 is
     a dead vantage point. *)
  let diags =
    Surface_lint.check_vantage surface ~monitors:[ asn 4; asn 3 ]
      ~origins:[ asn 5 ]
  in
  check_bool "QS403 fires for the deaf monitor" true (fires "QS403" diags);
  check_int "only the deaf monitor" 1 (List.length diags);
  check_bool "lists the origin it misses" true
    (List.for_all
       (fun d ->
          List.assoc_opt "deaf_to" d.Diag.context
          = Some (Asn.to_string (asn 5)))
       diags)

let test_qs404_fires () =
  let g = diamond () in
  (* 10 and 20 each steer selection toward the other across their peering:
     the minimal dispute wheel. 11 -> 21 are not adjacent at all. *)
  let diags =
    Surface_lint.check_overlay g
      [ (asn 10, asn 20); (asn 20, asn 10); (asn 11, asn 21) ]
  in
  check_bool "QS404 fires" true (fires "QS404" diags);
  check_int "wheel + non-adjacent entry" 2 (List.length diags);
  check_bool "severity error" true
    (List.for_all (fun d -> d.Diag.rule.Diag.severity = Diag.Error) diags)

let test_qs404_acyclic_overlay_clean () =
  let g = diamond () in
  (* Customer-target overrides restate prefer-customer; a risky override
     with no ring (21 toward its provider 20) closes no wheel. *)
  check_int "clean" 0
    (List.length
       (Surface_lint.check_overlay g
          [ (asn 10, asn 11); (asn 6, asn 11); (asn 21, asn 20) ]))

let test_qs4xx_registered_with_explanations () =
  List.iter
    (fun code ->
       check_bool (code ^ " registered") true (Lint.find_rule code <> None))
    [ "QS401"; "QS402"; "QS403"; "QS404" ];
  (* every registered rule carries a substantive --explain paragraph *)
  List.iter
    (fun r ->
       check_bool (r.Diag.code ^ " has an explanation") true
         (String.length r.Diag.explain > 0
          && not (String.equal r.Diag.explain r.Diag.doc)))
    Lint.all_rules

(* ---- Whole-scenario driver ------------------------------------------ *)

let scenario = lazy (Scenario.build ~seed:1 Scenario.Small)

let test_clean_scenario_no_errors () =
  let diags = Lint.run (Lazy.force scenario) in
  let errs = List.filter (fun d -> d.Diag.rule.Diag.severity = Diag.Error) diags in
  List.iter (fun d -> Format.eprintf "unexpected: %a@." Diag.pp d) errs;
  check_int "zero errors on a clean scenario" 0 (List.length errs);
  check_int "exit code 0" 0 (Diag.exit_code ~fail_on:Diag.Error diags)

let test_fingerprint_deterministic () =
  let s1 = Lazy.force scenario in
  let s2 = Scenario.build ~seed:1 Scenario.Small in
  Alcotest.(check string) "equal fingerprints" (Scenario.fingerprint s1)
    (Scenario.fingerprint s2);
  check_bool "different seeds differ" false
    (String.equal
       (Scenario.fingerprint s1)
       (Scenario.fingerprint (Scenario.build ~seed:2 Scenario.Small)));
  check_int "QS301 silent" 0
    (List.length (Scenario_lint.check_determinism s1))

let test_qs305_registered () =
  check_bool "QS305 in the registry" true
    (match Lint.find_rule "QS305" with
     | Some r -> r.Diag.slug = "parallel-fingerprint-divergence"
     | None -> false);
  check_bool "by slug too" true
    (Lint.find_rule "parallel-fingerprint-divergence" <> None)

let test_qs305_clean () =
  check_int "QS305 silent on a real scenario" 0
    (List.length (Scenario_lint.check_parallel_fingerprint (Lazy.force scenario)))

let test_qs305_fires () =
  (* Inject a jobs-dependent digest: a genuine divergence is (by design)
     impossible to produce through the real fingerprint, so the firing
     path is exercised with a digest that leaks the pool width. *)
  let diags =
    Scenario_lint.check_parallel_fingerprint
      ~fingerprint:(fun ~exec -> string_of_int (Pool.jobs exec))
      (Lazy.force scenario)
  in
  check_bool "QS305 fires on a jobs-dependent digest" true (fires "QS305" diags);
  check_int "exactly one finding" 1 (List.length diags);
  check_bool "severity error" true
    (List.for_all (fun d -> d.Diag.rule.Diag.severity = Diag.Error) diags)

(* ---- Sweep registry (QS308) ------------------------------------------ *)

let test_qs308_registered () =
  check_bool "QS308 in the registry" true
    (match Lint.find_rule "QS308" with
     | Some r ->
         r.Diag.slug = "sweep-entry-invalid"
         && String.length r.Diag.explain > 200
     | None -> false);
  check_bool "by slug too" true (Lint.find_rule "sweep-entry-invalid" <> None)

let sweep_entry ?base ?(overlay = []) ?(axes = []) name =
  { Sweep.name; doc = "test entry"; base; overlay; axes }

let test_qs308_builtin_clean () =
  check_int "shipped registry clean" 0 (List.length (Sweep_lint.check ()))

(* One injected entry per problem class; each must fire QS308 with the
   entry name and a stable problem slug in the diagnostic context. *)
let test_qs308_fires () =
  let problems diags =
    List.filter_map
      (fun (d : Diag.t) ->
         if d.Diag.rule.Diag.code = "QS308" then
           List.assoc_opt "problem" d.Diag.context
         else None)
      diags
  in
  let check_problem name registry slug =
    let diags = Sweep_lint.check ~registry () in
    check_bool (name ^ " fires QS308") true (fires "QS308" diags);
    check_bool (name ^ " carries slug " ^ slug) true
      (List.mem slug (problems diags))
  in
  check_problem "unknown key"
    [ sweep_entry "e" ~overlay:[ ("sise", "small") ] ]
    "unknown-key";
  check_problem "bad value"
    [ sweep_entry "e" ~overlay:[ ("churn", "torrential") ] ]
    "bad-value";
  check_problem "out-of-range value"
    [ sweep_entry "e" ~overlay:[ ("adversary", "1.5") ] ]
    "bad-value";
  check_problem "empty axis"
    [ sweep_entry "e" ~axes:[ ("seed", []) ] ]
    "empty-axis";
  check_problem "unreachable base"
    [ sweep_entry "e" ~base:"nowhere" ]
    "unreachable-base";
  check_problem "base cycle"
    [ sweep_entry "a" ~base:"b"; sweep_entry "b" ~base:"a" ]
    "base-cycle";
  check_problem "duplicate cell"
    [ sweep_entry "e" ~axes:[ ("churn", [ "heavy"; "heavy" ]) ] ]
    "duplicate-cell";
  check_problem "duplicate entry"
    [ sweep_entry "e"; sweep_entry "e" ]
    "duplicate-entry"

let test_qs308_in_lint_run () =
  (* The whole-scenario driver folds the registry check in; the shipped
     registry is clean, so a full run must stay QS308-free. *)
  let diags =
    Pool.with_pool ~jobs:1 (fun exec ->
        Lint.run ~rules:[ "QS308" ] ~determinism:false ~exec
          (Lazy.force scenario))
  in
  check_int "QS308 clean on the shipped registry" 0 (List.length diags)

(* ---- Serve configuration (QS307) ------------------------------------- *)

let test_qs307_registered () =
  check_bool "QS307 in the registry" true
    (match Lint.find_rule "QS307" with
     | Some r -> r.Diag.slug = "serve-config-invalid"
     | None -> false);
  check_bool "by slug too" true (Lint.find_rule "serve-config-invalid" <> None)

let qs307_base = Serve.Config.view Serve.Config.default

let test_qs307_structural () =
  check_int "default serve config clean" 0
    (List.length (Serve_lint.check qs307_base));
  check_bool "window not a multiple of bucket" true
    (fires "QS307"
       (Serve_lint.check { qs307_base with Serve_lint.window = 100. }));
  check_bool "non-positive bucket" true
    (fires "QS307"
       (Serve_lint.check { qs307_base with Serve_lint.bucket = 0. }));
  check_bool "threshold beyond the window" true
    (fires "QS307"
       (Serve_lint.check { qs307_base with Serve_lint.threshold = 7200. }));
  check_bool "non-positive threshold" true
    (fires "QS307"
       (Serve_lint.check { qs307_base with Serve_lint.threshold = 0. }));
  check_bool "negative slack" true
    (fires "QS307"
       (Serve_lint.check { qs307_base with Serve_lint.slack = -1. }));
  check_bool "chunk beyond queue capacity" true
    (fires "QS307"
       (Serve_lint.check
          { qs307_base with Serve_lint.capacity = 16; chunk = 64 }))

let test_qs307_monitored_pairs () =
  let s = Lazy.force scenario in
  let announced = Addressing.announced s.Scenario.addressing in
  let is_tor p = Tor_prefix.is_tor_prefix s.Scenario.tor_prefixes p in
  let client =
    fst (List.find (fun (p, _) -> not (is_tor p)) announced)
  in
  let guard = fst (List.find (fun (p, _) -> is_tor p) announced) in
  let view pairs = { qs307_base with Serve_lint.monitored = pairs } in
  check_int "announced (client, guard) pair clean" 0
    (List.length (Serve_lint.check ~scenario:s (view [ (client, guard) ])));
  check_bool "unannounced client prefix fires" true
    (fires "QS307"
       (Serve_lint.check ~scenario:s
          (view [ (pfx "203.0.113.0/24", guard) ])));
  check_bool "unannounced guard prefix fires" true
    (fires "QS307"
       (Serve_lint.check ~scenario:s
          (view [ (client, pfx "198.51.100.0/24") ])));
  check_bool "relay-less guard prefix fires" true
    (fires "QS307" (Serve_lint.check ~scenario:s (view [ (guard, client) ])));
  (* without a scenario only the structural checks run *)
  check_int "pairs unchecked without a scenario" 0
    (List.length (Serve_lint.check (view [ (pfx "203.0.113.0/24", client) ])))

(* ---- Observability registry (QS306) ---------------------------------- *)

let test_qs306_registered () =
  check_bool "QS306 in the registry" true
    (match Lint.find_rule "QS306" with
     | Some r -> r.Diag.slug = "metric-registry-mismatch"
     | None -> false);
  check_bool "by slug too" true
    (Lint.find_rule "metric-registry-mismatch" <> None)

let test_qs306_fires () =
  let manifest = [ "a.declared"; "a.dup"; "b.never_registered" ] in
  let regs = [ ("a.declared", 1); ("a.dup", 2); ("c.undeclared", 1) ] in
  let diags = Obs_lint.check ~manifest regs in
  check_bool "QS306 fires" true (fires "QS306" diags);
  check_int "one finding per defect" 3 (List.length diags);
  let problems =
    List.filter_map (fun d -> List.assoc_opt "problem" d.Diag.context) diags
    |> List.sort compare
  in
  check_bool "all three defect classes" true
    (problems = [ "duplicate"; "never-registered"; "undeclared" ])

let test_qs306_clean_and_exemptions () =
  check_int "matching registry is clean" 0
    (List.length
       (Obs_lint.check ~manifest:[ "a"; "b" ] [ ("a", 1); ("b", 1) ]));
  (* test.* names are reserved for suites: neither the undeclared nor the
     duplicate check may fire on them *)
  check_int "test.* registrations exempt" 0
    (List.length (Obs_lint.check ~manifest:[ "a" ] [ ("a", 1); ("test.x", 5) ]))

let test_qs306_live_registry_clean () =
  (* Linking qs_lint force-links every instrumented module, so the live
     registry in this binary must match the manifest exactly (the test.*
     cells other suites register never appear here — test binaries are
     one process per suite). *)
  let diags = Obs_lint.check (Metrics.registrations ()) in
  List.iter (fun d -> Format.eprintf "unexpected: %a@." Diag.pp d) diags;
  check_int "live registry matches the manifest" 0 (List.length diags)

let test_lint_run_jobs_identical () =
  (* The per-prefix sampling sweep must report the same findings, in the
     same order, at any worker count (determinism off: one scenario
     rebuild per Lint.run is enough for this test). *)
  let s = Lazy.force scenario in
  let report jobs =
    Pool.with_pool ~jobs (fun exec ->
        Lint.run ~determinism:false ~max_prefixes:64 ~exec s
        |> List.map (Format.asprintf "%a" Diag.pp)
        |> String.concat "\n")
  in
  Alcotest.(check string) "lint byte-identical at jobs=1 and jobs=4"
    (report 1) (report 4)

let test_rule_selection () =
  let s = Lazy.force scenario in
  let diags = Lint.run ~rules:[ "QS104"; "valley-violation" ] ~determinism:false s in
  check_bool "only selected rules" true
    (List.for_all (fun d -> List.mem d.Diag.rule.Diag.code [ "QS104"; "QS001" ]) diags);
  check_bool "unknown selector rejected" true
    (try ignore (Lint.select ~rules:[ "QS000" ] []); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "qs_lint"
    [ ("diag",
       [ Alcotest.test_case "exit code policy" `Quick test_diag_exit_code;
         Alcotest.test_case "json escaping" `Quick test_diag_json;
         Alcotest.test_case "rule lookup" `Quick test_rule_lookup ]);
      ("routing",
       [ Alcotest.test_case "valley route fires" `Quick test_valley_route_fires;
         Alcotest.test_case "peer-peer valley fires" `Quick
           test_peer_peer_valley_fires;
         Alcotest.test_case "looped path fires" `Quick test_looped_path_fires;
         Alcotest.test_case "prepending is not a loop" `Quick
           test_prepending_is_not_a_loop;
         Alcotest.test_case "next-hop inconsistency fires" `Quick
           test_next_hop_inconsistency_fires;
         Alcotest.test_case "computed table clean" `Quick
           test_computed_table_is_clean ]);
      ("topology",
       [ Alcotest.test_case "provider cycle fires" `Quick test_provider_cycle_fires;
         Alcotest.test_case "disconnected fires" `Quick test_disconnected_fires;
         Alcotest.test_case "tier sanity fires" `Quick test_tier_sanity_fires;
         Alcotest.test_case "generated graph symmetric" `Quick test_symmetry_clean ]);
      ("addressing",
       [ Alcotest.test_case "wrong origin fires" `Quick test_wrong_origin_fires;
         Alcotest.test_case "unknown prefix fires" `Quick test_unknown_prefix_fires;
         Alcotest.test_case "over-long ROA fires" `Quick test_overlong_roa_fires;
         Alcotest.test_case "MOAS conflict fires" `Quick test_moas_conflict_fires;
         Alcotest.test_case "unrouted relay fires" `Quick test_unrouted_relay_fires ]);
      ("scenario",
       [ Alcotest.test_case "update stream hygiene fires" `Quick
           test_update_stream_hygiene_fires;
         Alcotest.test_case "update stream hygiene clean" `Quick
           test_update_stream_hygiene_clean;
         Alcotest.test_case "dead collector peer fires" `Quick
           test_dead_collector_peer_fires;
         Alcotest.test_case "clean scenario: no errors" `Quick
           test_clean_scenario_no_errors;
         Alcotest.test_case "fingerprint deterministic" `Quick
           test_fingerprint_deterministic;
         Alcotest.test_case "rule selection" `Quick test_rule_selection ]);
      ("static surface",
       [ Alcotest.test_case "QS401 fires on an escapee" `Quick test_qs401_fires;
         Alcotest.test_case "QS401 clean stream and skips" `Quick
           test_qs401_clean_and_skips;
         Alcotest.test_case "QS401 computed table clean" `Quick
           test_qs401_computed_table_clean;
         Alcotest.test_case "QS402 stranded pair fires" `Quick test_qs402_fires;
         Alcotest.test_case "QS403 deaf vantage fires" `Quick test_qs403_fires;
         Alcotest.test_case "QS404 dispute wheel fires" `Quick test_qs404_fires;
         Alcotest.test_case "QS404 acyclic overlay clean" `Quick
           test_qs404_acyclic_overlay_clean;
         Alcotest.test_case "QS4xx registered with explanations" `Quick
           test_qs4xx_registered_with_explanations ]);
      ("executor",
       [ Alcotest.test_case "QS305 registered" `Quick test_qs305_registered;
         Alcotest.test_case "QS305 clean" `Quick test_qs305_clean;
         Alcotest.test_case "QS305 fires" `Quick test_qs305_fires;
         Alcotest.test_case "lint jobs identity" `Quick
           test_lint_run_jobs_identical ]);
      ("sweep registry",
       [ Alcotest.test_case "QS308 registered" `Quick test_qs308_registered;
         Alcotest.test_case "QS308 builtin clean" `Quick
           test_qs308_builtin_clean;
         Alcotest.test_case "QS308 fires" `Quick test_qs308_fires;
         Alcotest.test_case "QS308 in lint run" `Quick
           test_qs308_in_lint_run ]);
      ("serve config",
       [ Alcotest.test_case "QS307 registered" `Quick test_qs307_registered;
         Alcotest.test_case "QS307 structural checks" `Quick
           test_qs307_structural;
         Alcotest.test_case "QS307 monitored pairs" `Quick
           test_qs307_monitored_pairs ]);
      ("observability",
       [ Alcotest.test_case "QS306 registered" `Quick test_qs306_registered;
         Alcotest.test_case "QS306 fires" `Quick test_qs306_fires;
         Alcotest.test_case "QS306 clean and exemptions" `Quick
           test_qs306_clean_and_exemptions;
         Alcotest.test_case "QS306 live registry clean" `Quick
           test_qs306_live_registry_clean ]) ]
