(* Tests for qs_check — and the regression tests for the three stream-
   conformance bugs it was built to pin:

   1. [Session_reset.flush] used to emit buffered updates per session in
      hash order, violating global time order across sessions;
   2. [Measurement] used to count only announcements in [updates] and
      materialized phantom cells for withdraw-only keys;
   3. [Measurement.extra_ases] used to threshold cumulative residency,
      so disjoint short appearances could pass the 5-minute rule. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let scenario = lazy (Scenario.build ~seed:5 Scenario.Small)

let tiny_dynamics =
  { Dynamics.short_config with
    Dynamics.duration = 12. *. 3600.;
    base_churn_rate = 0.3 }

(* Everything off: the only updates the pipeline sees are the extras the
   test injects, over the time-0 baseline tables. *)
let no_churn =
  { Dynamics.short_config with
    Dynamics.duration = 3600.;
    base_churn_rate = 0.;
    global_link_events = 0;
    resets_per_session = 0.;
    pathological_prefixes = 0 }

let session k = { Update.collector = "rrc00"; peer = Asn.of_int (65000 + k) }

let prefix_of i = Prefix.make (Ipv4.of_int_trunc (0x0A000000 + (i * 256))) 24

let announce ?(path = [ Asn.of_int 100; Asn.of_int 200 ]) s time i =
  { Update.time; session = s; kind = Update.Announce (Route.make (prefix_of i) path) }

(* ---- regression 1: flush preserves global time order ------------------ *)

let test_flush_global_order () =
  let emitted = ref [] in
  let f = Session_reset.create ~emit:(fun u -> emitted := u :: !emitted) () in
  let a = session 1 and b = session 2 in
  (* Interleaved across two sessions; few enough distinct prefixes that
     everything stays buffered until flush. Any per-session emission
     order yields times out of global order regardless of hash order. *)
  List.iter (Session_reset.push f)
    [ announce a 10. 0; announce b 20. 1; announce a 30. 2; announce b 40. 3 ];
  Session_reset.flush f;
  let times = List.rev_map (fun u -> u.Update.time) !emitted in
  Alcotest.(check (list (float 1e-9))) "flush emits in global time order"
    [ 10.; 20.; 30.; 40. ] times;
  let st = Session_reset.stats f in
  check_int "pushed" 4 st.Session_reset.pushed;
  check_int "passed" 4 st.Session_reset.passed;
  check_int "dropped" 0 st.Session_reset.dropped;
  check_int "buffered" 0 st.Session_reset.buffered

(* ---- regressions 2 & 3: measurement cell semantics -------------------- *)

(* A (session, prefix) key with a time-0 baseline, plus a prefix no
   session has ever seen — both derived from a throwaway zero-churn run
   so the real run can inject extras against known state. *)
let baseline_key_and_fresh_prefix () =
  let m = Measurement.run ~dynamics:no_churn (Lazy.force scenario) in
  let s, table0 = Update.Session_map.choose m.Measurement.initial in
  let p, r0 = Prefix.Map.choose table0 in
  let used q =
    Update.Session_map.exists
      (fun _ t -> Prefix.Map.mem q t)
      m.Measurement.initial
  in
  let rec fresh i =
    let q = Prefix.make (Ipv4.of_int_trunc (0xC6336400 + (i * 256))) 24 in
    if used q then fresh (i + 1) else q
  in
  (s, p, r0, fresh 0)

let test_withdraw_counts_as_update () =
  let s, p, r0, _ = baseline_key_and_fresh_prefix () in
  let extras =
    [ { Update.time = 100.; session = s;
        kind = Update.Announce (Route.make p r0.Route.as_path) };
      { Update.time = 200.; session = s; kind = Update.Withdraw p } ]
  in
  let m =
    Measurement.run ~dynamics:no_churn ~extra_updates:extras
      (Lazy.force scenario)
  in
  let cell =
    List.find
      (fun (c : Measurement.cell) ->
         Update.session_equal c.Measurement.key.Measurement.session s
         && Prefix.equal c.Measurement.key.Measurement.prefix p)
      m.Measurement.cells
  in
  (* Pre-fix this was 1: the withdraw was silently excluded. *)
  check_int "announce + withdraw both count" 2 cell.Measurement.updates

let test_withdraw_only_key_is_not_a_cell () =
  let s, _, _, fresh = baseline_key_and_fresh_prefix () in
  let extras =
    [ { Update.time = 100.; session = s; kind = Update.Withdraw fresh } ]
  in
  let m =
    Measurement.run ~dynamics:no_churn ~extra_updates:extras
      (Lazy.force scenario)
  in
  (* Pre-fix this materialized a phantom cell with updates = 0. *)
  check_bool "no cell for a withdraw-only key" true
    (List.for_all
       (fun (c : Measurement.cell) ->
          not (Prefix.equal c.Measurement.key.Measurement.prefix fresh))
       m.Measurement.cells);
  check_bool "and no conformance violation either" true
    (Conformance.check_measurement m = [])

let test_extra_ases_needs_contiguous_residency () =
  let s, p, r0, _ = baseline_key_and_fresh_prefix () in
  let intruder = Asn.of_int 399_999 in
  let with_intruder = intruder :: r0.Route.as_path in
  (* Ten disjoint 40 s appearances: 400 s cumulative, 40 s contiguous. *)
  let extras =
    List.concat
      (List.init 10 (fun k ->
           let t = 600. +. (120. *. float_of_int k) in
           [ { Update.time = t; session = s;
               kind = Update.Announce (Route.make p with_intruder) };
             { Update.time = t +. 40.; session = s;
               kind = Update.Announce (Route.make p r0.Route.as_path) } ]))
  in
  let m =
    Measurement.run ~dynamics:no_churn ~extra_updates:extras
      (Lazy.force scenario)
  in
  let cell =
    List.find
      (fun (c : Measurement.cell) ->
         Update.session_equal c.Measurement.key.Measurement.session s
         && Prefix.equal c.Measurement.key.Measurement.prefix p)
      m.Measurement.cells
  in
  let assoc asn l =
    List.fold_left
      (fun acc (a, d) -> if Asn.equal a asn then acc +. d else acc)
      0. l
  in
  (* Cumulative residency clears the 5-minute bar by a wide margin... *)
  check_bool "cumulative residency ~400 s" true
    (assoc intruder cell.Measurement.residency > 390.);
  (* ...but no single appearance does, so the AS must not count. Pre-fix
     extra_ases thresholded the cumulative sum and reported it. *)
  check_bool "longest run ~40 s" true
    (assoc intruder cell.Measurement.contiguous < 50.);
  check_bool "disjoint stints do not pass the 5-minute rule" true
    (not (Asn.Set.mem intruder (Measurement.extra_ases cell)))

(* ---- pinning: the streaming window obeys the same contiguity rule ----- *)

(* The qs_serve sliding window reimplements the 5-minute rule with armed
   timers instead of sealed cells; this pins both arms to the same
   semantics — longest contiguous run, not cumulative residency — on a
   stream whose stints all straddle 60 s bucket boundaries, where a
   bucket-quantized reimplementation would drift. *)
let test_window_pins_contiguous_rule () =
  let s = session 0 in
  let p = prefix_of 0 in
  let key = { Measurement.session = s; prefix = p } in
  let base_path = [ Asn.of_int 100; Asn.of_int 200 ] in
  let intruder = Asn.of_int 399_999 in
  let with_intruder = intruder :: base_path in
  let feed =
    (* Ten disjoint 40 s stints, 400 s cumulative, each crossing a bucket
       boundary (starts at 90 mod 120): must never fire. *)
    List.concat
      (List.init 10 (fun k ->
           let t = 90. +. (120. *. float_of_int k) in
           [ announce ~path:with_intruder s t 0;
             announce ~path:base_path s (t +. 40.) 0 ]))
    (* ...then one single 310 s run over five bucket boundaries: fires. *)
    @ [ announce ~path:with_intruder s 1530. 0;
        announce ~path:base_path s 1840. 0 ]
  in
  let horizon = 3600. in
  let base_set = Route.as_set (Route.make p base_path) in
  let w = Window.create ~watched:(fun _ -> true) () in
  Window.set_baseline w key base_set;
  let events =
    List.concat_map (fun u -> Window.apply w u) feed
    @ Window.drain w ~horizon
  in
  let acc = Measurement.Acc.create () in
  Measurement.Acc.set_baseline acc base_set;
  List.iter (fun u -> ignore (Measurement.Acc.consume acc u)) feed;
  Measurement.Acc.seal acc horizon;
  let fired =
    List.filter_map
      (function Event.Extra_as { asn; time; run; _ } -> Some (asn, time, run)
              | _ -> None)
      events
  in
  (match fired with
   | [ (a, time, run) ] ->
       check_bool "the intruder fired" true (Asn.equal a intruder);
       (* The timer arms at run entry + threshold: nothing the 400 s of
          disjoint stints accumulated may fire it earlier. *)
       check_bool "not before 1530 + 300" true (time >= 1830.);
       check_bool "reported run is the contiguous one" true
         (run >= 300. && run < 400.)
   | l -> Alcotest.failf "expected exactly one extra-AS event, got %d"
            (List.length l));
  (* And the emitted set equals the batch rule on the sealed cell. *)
  let cell =
    match Measurement.Acc.cell key acc with
    | Some c -> c
    | None -> Alcotest.fail "batch accumulator lost the key"
  in
  check_bool "window emission = batch extra_ases" true
    (Asn.Set.equal
       (Measurement.extra_ases cell)
       (Asn.Set.singleton intruder))

(* ---- Conformance ------------------------------------------------------ *)

let test_conformance_detects_violations () =
  let c = Conformance.create ~duration:1000. ~require_global_order:true () in
  let sink = ref 0 in
  let feed = Conformance.wrap c (fun _ -> incr sink) in
  let a = session 1 and b = session 2 in
  feed (announce a 50. 0);
  feed (announce b 60. 1);
  feed (announce a 55. 2);                          (* global regression *)
  feed (announce a 40. 3);                          (* session regression *)
  feed (announce a 2000. 4);                        (* past the horizon *)
  feed { Update.time = 70.; session = b; kind = Update.Withdraw (prefix_of 9) };
  check_int "wrap forwards everything" 6 !sink;
  check_int "observed" 6 (Conformance.observed c);
  let violations = Conformance.finalize c in
  let count inv =
    List.length
      (List.filter
         (fun (v : Conformance.violation) -> v.Conformance.invariant = inv)
         violations)
  in
  (* 55 and 40 both regress past b's 60, and b's closing withdraw at 70
     lands after the horizon-breaking t=2000 advanced the global clock. *)
  check_int "global-monotonic" 3 (count "global-monotonic");
  check_int "session-monotonic" 1 (count "session-monotonic");
  check_int "horizon" 1 (count "horizon");
  check_int "withdraw-before-announce" 1 (count "withdraw-before-announce")

let test_conformance_clean_stream () =
  let c = Conformance.create ~duration:100. () in
  let a = session 1 in
  Conformance.observe c (announce a 10. 0);
  Conformance.observe c (announce a 20. 1);
  Alcotest.(check (list pass)) "no violations" [] (Conformance.finalize c)

let test_conformance_full_pipeline () =
  let m, violations = Conformance.run ~dynamics:tiny_dynamics (Lazy.force scenario) in
  List.iter
    (fun v -> Format.eprintf "%a@." Conformance.pp_violation v)
    violations;
  check_int "no violations on a real pipeline" 0 (List.length violations);
  check_bool "cells exist" true (m.Measurement.cells <> [])

let test_check_measurement_flags_tampering () =
  let m = Measurement.run ~dynamics:no_churn (Lazy.force scenario) in
  let cell = List.hd m.Measurement.cells in
  let has inv vs =
    List.exists
      (fun (v : Conformance.violation) -> v.Conformance.invariant = inv)
      vs
  in
  let phantom =
    { cell with Measurement.baseline = None; Measurement.updates = 0 }
  in
  check_bool "phantom cell flagged" true
    (has "phantom-cell"
       (Conformance.check_measurement { m with Measurement.cells = [ phantom ] }));
  let overrun =
    { cell with
      Measurement.residency = [ (Asn.of_int 7, m.Measurement.duration +. 10.) ] }
  in
  check_bool "residency overrun flagged" true
    (has "residency-conservation"
       (Conformance.check_measurement { m with Measurement.cells = [ overrun ] }))

(* ---- Differential ----------------------------------------------------- *)

let test_differential_small () =
  let outcomes =
    Differential.run
      ~dynamics:{ Differential.default_dynamics with Dynamics.duration = 6. *. 3600. }
      ~seeds:[ 5 ] Scenario.Small
  in
  List.iter
    (fun o ->
       if not o.Differential.ok then
         Format.eprintf "%a@." Differential.pp_outcome o)
    outcomes;
  check_int "8 pair checks" 8 (List.length outcomes);
  check_bool "all identical" true (Differential.all_ok outcomes)

let test_static_suite_small () =
  (* The dynamic-vs-static soundness oracle: simulated update streams and
     attack wins must stay inside the valley-free closure bounds. *)
  let outcomes = Differential.static ~seeds:[ 1 ] Scenario.Small in
  List.iter
    (fun o ->
       if not o.Differential.ok then
         Format.eprintf "%a@." Differential.pp_outcome o)
    outcomes;
  check_int "one outcome per experiment" 4 (List.length outcomes);
  check_bool "dynamics stay inside the static bounds" true
    (Differential.all_ok outcomes)

(* ---- Fuzz ------------------------------------------------------------- *)

let test_fuzz_mrt () =
  let s = Fuzz.mrt ~seeds:50 () in
  List.iter (fun v -> Format.eprintf "%a@." Fuzz.pp_violation v) s.Fuzz.violations;
  check_bool "mrt fuzz clean" true (Fuzz.ok s);
  check_bool "mutants were rejected" true (s.Fuzz.rejected > 0)

let test_fuzz_session_reset () =
  let s = Fuzz.session_reset ~seeds:25 () in
  List.iter (fun v -> Format.eprintf "%a@." Fuzz.pp_violation v) s.Fuzz.violations;
  check_bool "session-reset fuzz clean" true (Fuzz.ok s)

(* ---- qcheck properties ------------------------------------------------ *)

let prop_conformance_random_churn =
  QCheck.Test.make ~name:"conformance holds over random churn" ~count:4
    QCheck.(int_range 0 7)
    (fun k ->
       let dynamics =
         { Dynamics.short_config with
           Dynamics.duration = 6. *. 3600.;
           base_churn_rate = 0.15 +. (0.1 *. float_of_int k) }
       in
       let _, violations = Conformance.run ~dynamics (Lazy.force scenario) in
       violations = [])

let prop_reset_accounting =
  QCheck.Test.make ~name:"session-reset accounting identity" ~count:50
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 300))
    (fun (seed, n) ->
       let rng = Rng.of_int seed in
       let s = session 7 in
       let f = Session_reset.create ~emit:(fun _ -> ()) () in
       let identity () =
         let st = Session_reset.stats f in
         st.Session_reset.pushed
         = st.Session_reset.passed + st.Session_reset.dropped
           + st.Session_reset.buffered
       in
       let ok = ref true in
       let time = ref 0. in
       for _ = 1 to n do
         (* Occasionally replay a table chunk fast enough to trip the
            burst detector, so the dropped counter is exercised too. *)
         if Rng.int rng 40 = 0 then
           for i = 0 to 149 do
             time := !time +. 0.05;
             Session_reset.push f (announce s !time i)
           done
         else begin
           time := !time +. Rng.float rng 90.;
           Session_reset.push f (announce s !time (Rng.int rng 400))
         end;
         if not (identity ()) then ok := false
       done;
       Session_reset.flush f;
       let st = Session_reset.stats f in
       !ok && identity () && st.Session_reset.buffered = 0)

let prop_mrt_decode_total =
  QCheck.Test.make ~name:"MRT decode never raises on arbitrary bytes"
    ~count:300 QCheck.string
    (fun data ->
       (match Mrt.decode_result data with
        | Ok _ | Error _ -> true
        | exception _ -> false)
       &&
       (match Mrt.decode_rib_result data with
        | Ok _ | Error _ -> true
        | exception _ -> false))

let prop_residency_conservation =
  QCheck.Test.make ~name:"residency conservation over random extras" ~count:20
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
       (* Random churn injected on one baseline key: conservation and
          contiguous <= cumulative must survive arbitrary interleavings
          of announces and withdraws. *)
       let rng = Rng.of_int seed in
       let s, p, r0, _ = baseline_key_and_fresh_prefix () in
       let time = ref 0. in
       let extras =
         List.init 40 (fun _ ->
             time := !time +. Rng.float rng 80.;
             if Rng.int rng 3 = 0 then
               { Update.time = !time; session = s; kind = Update.Withdraw p }
             else
               let path =
                 if Rng.bool rng then r0.Route.as_path
                 else Asn.of_int (399_000 + Rng.int rng 10) :: r0.Route.as_path
               in
               { Update.time = !time; session = s;
                 kind = Update.Announce (Route.make p path) })
       in
       let m =
         Measurement.run ~dynamics:no_churn ~extra_updates:extras
           (Lazy.force scenario)
       in
       Conformance.check_measurement m = [])

let () =
  Alcotest.run "check"
    [ ("regressions",
       [ Alcotest.test_case "flush preserves global order" `Quick
           test_flush_global_order;
         Alcotest.test_case "withdraw counts as update" `Quick
           test_withdraw_counts_as_update;
         Alcotest.test_case "withdraw-only key has no cell" `Quick
           test_withdraw_only_key_is_not_a_cell;
         Alcotest.test_case "extra-AS rule needs contiguity" `Quick
           test_extra_ases_needs_contiguous_residency;
         Alcotest.test_case "streaming window pins the same rule" `Quick
           test_window_pins_contiguous_rule ]);
      ("conformance",
       [ Alcotest.test_case "detects injected violations" `Quick
           test_conformance_detects_violations;
         Alcotest.test_case "clean stream" `Quick test_conformance_clean_stream;
         Alcotest.test_case "full pipeline conforms" `Quick
           test_conformance_full_pipeline;
         Alcotest.test_case "flags tampered measurements" `Quick
           test_check_measurement_flags_tampering ]);
      ("differential",
       [ Alcotest.test_case "pairs identical on Small" `Quick
           test_differential_small;
         Alcotest.test_case "static bounds contain dynamics" `Quick
           test_static_suite_small ]);
      ("fuzz",
       [ Alcotest.test_case "mrt mutation fuzz" `Quick test_fuzz_mrt;
         Alcotest.test_case "session-reset injection fuzz" `Quick
           test_fuzz_session_reset ]);
      ("properties",
       List.map (fun t -> QCheck_alcotest.to_alcotest t)
         [ prop_conformance_random_churn; prop_reset_accounting;
           prop_mrt_decode_total; prop_residency_conservation ]) ]
