(* Tests for qs_bgp: routes, link sets, the Gao-Rexford propagation engine,
   MRT codec, collectors, session-reset filtering and the dynamics
   simulator. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let asn = Asn.of_int
let pfx = Prefix.of_string

let stub_info name =
  { As_graph.name; tier = As_graph.Stub; hosting_weight = 0. }

(* ---- Route ---------------------------------------------------------- *)

let test_route_basics () =
  let r = Route.make (pfx "10.0.0.0/8") [ asn 3; asn 2; asn 1 ] in
  check_int "origin" 1 (Asn.to_int (Route.origin r));
  check_int "first hop" 3 (Asn.to_int (Route.first_hop r));
  check_int "length" 3 (Route.path_length r);
  check_bool "contains" true (Route.contains_as r (asn 2));
  check_bool "not contains" false (Route.contains_as r (asn 9))

let test_route_as_set_prepending () =
  let a = Route.make (pfx "10.0.0.0/8") [ asn 2; asn 1; asn 1; asn 1 ] in
  let b = Route.make (pfx "10.0.0.0/8") [ asn 2; asn 1 ] in
  check_int "prepending counts in length" 4 (Route.path_length a);
  check_bool "but not in AS set" true (Route.same_as_set a b)

let test_route_empty_rejected () =
  Alcotest.check_raises "empty path" (Invalid_argument "Route.make: empty AS path")
    (fun () -> ignore (Route.make (pfx "10.0.0.0/8") []))

(* ---- Link_set ------------------------------------------------------- *)

let test_link_set () =
  let s = Link_set.add (asn 1) (asn 2) Link_set.empty in
  check_bool "normalized" true (Link_set.mem (asn 2) (asn 1) s);
  check_bool "touches" true (Link_set.touches (asn 1) s);
  check_bool "not touches" false (Link_set.touches (asn 3) s);
  let s = Link_set.remove (asn 2) (asn 1) s in
  check_bool "removed" true (Link_set.is_empty s)

(* ---- Propagate: hand-built topologies ------------------------------- *)

(* A diamond:      1 (provider of 2 and 3)
                  / \
                 2   3      2 and 3 are peers
                  \ /
                   4 (customer of both 2 and 3)               *)
let diamond () =
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info "")) [ 1; 2; 3; 4 ];
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 2);
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 3);
  As_graph.add_peering g (asn 2) (asn 3);
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 4);
  As_graph.add_provider_customer g ~provider:(asn 3) ~customer:(asn 4);
  As_graph.Indexed.of_graph g

let origin4 = Announcement.originate (asn 4) (pfx "10.0.0.0/24")

let path_at outcome a =
  match Propagate.route_at outcome a with
  | Some r -> List.map Asn.to_int r.Route.as_path
  | None -> []

let test_propagate_diamond () =
  let outcome = Propagate.compute (diamond ()) [ origin4 ] in
  check_int "all routed" 4 (Propagate.routed_count outcome);
  Alcotest.(check (list int)) "2 exports 2-4" [ 2; 4 ] (path_at outcome (asn 2));
  Alcotest.(check (list int)) "origin exports itself" [ 4 ] (path_at outcome (asn 4));
  (* 1 hears from both 2 and 3 (customer routes, equal length): the
     tie-break picks the lower next-hop ASN, 2. *)
  Alcotest.(check (list int)) "tie-break lowest ASN" [ 1; 2; 4 ]
    (path_at outcome (asn 1));
  check_bool "route class at origin" true
    (Propagate.route_class_at outcome (asn 4) = Some `Origin);
  check_bool "route class customer at 2" true
    (Propagate.route_class_at outcome (asn 2) = Some `Customer)

let test_propagate_prefer_customer_over_peer () =
  let outcome = Propagate.compute (diamond ()) [ origin4 ] in
  Alcotest.(check (list int)) "3 via its customer" [ 3; 4 ] (path_at outcome (asn 3))

let test_propagate_peer_route_selected () =
  (* Without a 3-4 link, 3 reaches 4 via peer 2 (preferred to provider 1). *)
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info "")) [ 1; 2; 3; 4 ];
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 2);
  As_graph.add_provider_customer g ~provider:(asn 1) ~customer:(asn 3);
  As_graph.add_peering g (asn 2) (asn 3);
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 4);
  let outcome = Propagate.compute (As_graph.Indexed.of_graph g) [ origin4 ] in
  Alcotest.(check (list int)) "3 via peer 2" [ 3; 2; 4 ] (path_at outcome (asn 3));
  check_bool "class peer" true (Propagate.route_class_at outcome (asn 3) = Some `Peer)

let test_propagate_valley_free_exports () =
  (* 3 learns via peer 2; it must not re-export to its own peer 5. *)
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info "")) [ 2; 3; 4; 5 ];
  As_graph.add_peering g (asn 2) (asn 3);
  As_graph.add_provider_customer g ~provider:(asn 2) ~customer:(asn 4);
  As_graph.add_peering g (asn 3) (asn 5);
  let outcome = Propagate.compute (As_graph.Indexed.of_graph g) [ origin4 ] in
  check_bool "3 has peer route" true (Propagate.has_route outcome (asn 3));
  check_bool "5 gets nothing (valley-free)" false (Propagate.has_route outcome (asn 5))

let test_propagate_failed_link () =
  let failed = Link_set.of_list [ (asn 2, asn 4) ] in
  let outcome = Propagate.compute (diamond ()) ~failed [ origin4 ] in
  Alcotest.(check (list int)) "2 reroutes via peer 3" [ 2; 3; 4 ]
    (path_at outcome (asn 2));
  Alcotest.(check (list int)) "1 now via 3" [ 1; 3; 4 ] (path_at outcome (asn 1))

let test_propagate_disconnected () =
  let failed = Link_set.of_list [ (asn 2, asn 4); (asn 3, asn 4) ] in
  let outcome = Propagate.compute (diamond ()) ~failed [ origin4 ] in
  check_int "only origin routed" 1 (Propagate.routed_count outcome);
  check_bool "2 unreachable" false (Propagate.has_route outcome (asn 2))

let test_propagate_prepending () =
  let ann = Announcement.with_prepend 2 origin4 in
  let outcome = Propagate.compute (diamond ()) [ ann ] in
  (match Propagate.route_at outcome (asn 1) with
   | Some r -> check_int "longer path length" 5 (Route.path_length r)
   | None -> Alcotest.fail "expected route");
  check_int "everyone still routed" 4 (Propagate.routed_count outcome)

let test_propagate_export_to () =
  (* Origin 4 announces only to neighbor 2; 3 then learns it across the
     2-3 peering (a customer route at 2 is exportable to peers). *)
  let ann = Announcement.with_export_to (Asn.Set.singleton (asn 2)) origin4 in
  let outcome = Propagate.compute (diamond ()) [ ann ] in
  Alcotest.(check (list int)) "3 via 2, not direct" [ 3; 2; 4 ]
    (path_at outcome (asn 3))

let test_propagate_max_radius () =
  let ann = Announcement.with_max_radius 1 origin4 in
  let outcome = Propagate.compute (diamond ()) [ ann ] in
  check_bool "neighbors reached" true
    (Propagate.has_route outcome (asn 2) && Propagate.has_route outcome (asn 3));
  check_bool "two hops away not reached" false (Propagate.has_route outcome (asn 1))

let test_propagate_loop_detection () =
  let ann =
    Announcement.originate (asn 4) (pfx "10.0.0.0/24")
    |> Announcement.with_fake_suffix [ asn 2 ]
  in
  let outcome = Propagate.compute (diamond ()) [ ann ] in
  check_bool "2 rejects looped path" false (Propagate.has_route outcome (asn 2));
  check_bool "3 accepts" true (Propagate.has_route outcome (asn 3))

let test_propagate_multi_origin () =
  let ann1 = Announcement.originate (asn 1) (pfx "10.0.0.0/24") in
  let outcome = Propagate.compute (diamond ()) [ origin4; ann1 ] in
  check_bool "2 prefers customer origin" true
    (Propagate.winning_announcement outcome (asn 2) = Some 0);
  check_bool "1 keeps its own" true
    (Propagate.winning_announcement outcome (asn 1) = Some 1);
  let captured = Propagate.captured outcome 1 in
  check_bool "1 captured by itself" true (List.exists (Asn.equal (asn 1)) captured)

let test_propagate_forwarding_path () =
  let outcome = Propagate.compute (diamond ()) [ origin4 ] in
  (match Propagate.forwarding_path outcome (asn 1) with
   | Some walk ->
       Alcotest.(check (list int)) "walk to origin" [ 1; 2; 4 ]
         (List.map Asn.to_int walk)
   | None -> Alcotest.fail "expected forwarding path");
  check_bool "next hop of 1" true (Propagate.next_hop outcome (asn 1) = Some (asn 2));
  check_bool "origin has no next hop" true (Propagate.next_hop outcome (asn 4) = None)

let test_propagate_candidates () =
  let outcome = Propagate.compute (diamond ()) [ origin4 ] in
  let cands = Propagate.candidates_at outcome (asn 1) in
  check_int "two candidates" 2 (List.length cands);
  (match cands with
   | best :: _ ->
       check_int "best candidate from 2" 2 (Asn.to_int (Route.first_hop best))
   | [] -> ())

let test_propagate_rejects () =
  Alcotest.check_raises "no announcements"
    (Invalid_argument "Propagate.compute: no announcements")
    (fun () -> ignore (Propagate.compute (diamond ()) []))

(* Regression for the Workspace aliasing contract: an outcome computed
   through a workspace is a view over the workspace's arrays, so the next
   compute through the same workspace clobbers it in place. If this test
   ever starts failing, outcomes have become copies and every hot path
   that relies on workspace reuse is silently allocating again. *)
let test_workspace_clobbers_retained_outcome () =
  let ix = diamond () in
  let ws = Propagate.Workspace.create () in
  let hop outcome a = Option.map Asn.to_int (Propagate.next_hop outcome a) in
  let first = Propagate.compute ix ~workspace:ws [ origin4 ] in
  Alcotest.(check (option int)) "fresh outcome: 2 forwards to its customer 4"
    (Some 4) (hop first (asn 2));
  (* Same workspace, different origin: 4's prefix now originates at 1, so
     AS 2's best route flips to its provider. *)
  let second =
    Propagate.compute ix ~workspace:ws
      [ Announcement.originate (asn 1) (pfx "10.0.0.0/24") ]
  in
  Alcotest.(check (option int)) "second outcome: 2 forwards to provider 1"
    (Some 1) (hop second (asn 2));
  Alcotest.(check (option int))
    "retained first outcome was clobbered by the second compute"
    (Some 1) (hop first (asn 2));
  (* A workspace-free compute over the same inputs is unaffected. *)
  let plain = Propagate.compute ix [ origin4 ] in
  let _ = Propagate.compute ix ~workspace:ws [ origin4 ] in
  Alcotest.(check (option int)) "plain outcomes are stable"
    (Some 4) (hop plain (asn 2))

let test_copy_owns_arrays () =
  let ix = diamond () in
  let ws = Propagate.Workspace.create () in
  let hop outcome a = Option.map Asn.to_int (Propagate.next_hop outcome a) in
  let first = Propagate.copy (Propagate.compute ix ~workspace:ws [ origin4 ]) in
  let _ =
    Propagate.compute ix ~workspace:ws
      [ Announcement.originate (asn 1) (pfx "10.0.0.0/24") ]
  in
  (* Unlike the raw workspace view pinned above, the copy survives. *)
  Alcotest.(check (option int)) "copied outcome survives the next compute"
    (Some 4) (hop first (asn 2));
  check_int "copy still counts all routed ASes" 4 (Propagate.routed_count first)

(* The dynamics cache-miss path is [compute ~workspace] + [copy]: it must
   allocate strictly less than a cold [compute] (which builds all five
   arrays, two settle arrays and two bucket tables from scratch). *)
let test_workspace_copy_alloc_bound () =
  let ix = diamond () in
  let ws = Propagate.Workspace.create () in
  ignore (Propagate.compute ix ~workspace:ws [ origin4 ] : Propagate.t);
  let bytes f =
    let before = Gc.allocated_bytes () in
    ignore (f () : Propagate.t);
    Gc.allocated_bytes () -. before
  in
  let cold = bytes (fun () -> Propagate.compute ix [ origin4 ]) in
  let miss =
    bytes (fun () -> Propagate.copy (Propagate.compute ix ~workspace:ws [ origin4 ]))
  in
  check_bool "workspace+copy allocates less than a cold compute" true
    (miss < cold)

(* ---- Propagate.Delta ------------------------------------------------- *)

(* Every AS agrees between a delta-maintained outcome and a fresh full
   compute: same route (path bytes), same class. *)
let same_outcome ases o_delta o_full =
  List.for_all
    (fun a ->
       (match (Propagate.route_at o_delta a, Propagate.route_at o_full a) with
        | Some r1, Some r2 -> Route.equal r1 r2
        | None, None -> true
        | Some _, None | None, Some _ -> false)
       && Propagate.route_class_at o_delta a = Propagate.route_class_at o_full a)
    ases

let delta_vs_full ix ases anns_of steps =
  let st = Propagate.Delta.create ix in
  let scratch = Propagate.Delta.create_scratch () in
  List.for_all
    (fun (failed, prepend) ->
       let anns = anns_of prepend in
       let o_delta, _ = Propagate.Delta.update st scratch ~failed anns in
       let o_full = Propagate.compute ix ~failed anns in
       same_outcome ases o_delta o_full)
    steps

let test_delta_matches_full_diamond () =
  let ix = diamond () in
  let ases = List.map asn [ 1; 2; 3; 4 ] in
  let link a b = (asn a, asn b) in
  let steps =
    [ (Link_set.empty, 0);                                  (* cold start *)
      (Link_set.of_list [ link 2 4 ], 0);                   (* fail on-tree *)
      (Link_set.empty, 0);                                  (* restore *)
      (Link_set.of_list [ link 1 3 ], 0);                   (* off-tree *)
      (Link_set.of_list [ link 1 3; link 2 4 ], 0);         (* pile on *)
      (Link_set.of_list [ link 2 4; link 3 4 ], 2);         (* swap + prepend *)
      (Link_set.empty, 0);                                  (* all back *)
      (Link_set.empty, 2) ]                                 (* prepend only *)
  in
  check_bool "delta matches full across a diamond event sequence" true
    (delta_vs_full ix ases
       (fun prepend -> [ Announcement.with_prepend prepend origin4 ])
       steps)

let test_delta_stop_early_off_tree () =
  let ix = diamond () in
  let st = Propagate.Delta.create ix in
  let scratch = Propagate.Delta.create_scratch () in
  let _, k0 = Propagate.Delta.update st scratch [ origin4 ] in
  check_bool "cold start is a full rebuild" true (k0 = Propagate.Delta.Full_rebuild);
  (* 1-3 carries no selected route (1 tie-breaks to 2, 3 goes direct). *)
  let failed = Link_set.of_list [ (asn 1, asn 3) ] in
  let _, k1 = Propagate.Delta.update st scratch ~failed [ origin4 ] in
  (match k1 with
   | Propagate.Delta.Steps { links_applied; frontier; stop_early } ->
       check_int "one link applied" 1 links_applied;
       check_int "no route touched" 0 frontier;
       check_int "stop-early" 1 stop_early
   | Propagate.Delta.Full_rebuild -> Alcotest.fail "expected a delta step");
  (* 2-4 is on-tree for 1, 2 and the frontier must cover both. *)
  let failed = Link_set.of_list [ (asn 1, asn 3); (asn 2, asn 4) ] in
  let _, k2 = Propagate.Delta.update st scratch ~failed [ origin4 ] in
  (match k2 with
   | Propagate.Delta.Steps { frontier; stop_early; _ } ->
       check_bool "frontier covers the rerouted ASes" true (frontier >= 2);
       check_int "no stop-early this time" 0 stop_early
   | Propagate.Delta.Full_rebuild -> Alcotest.fail "expected a delta step")

let test_delta_restore_creates_route () =
  let ix = diamond () in
  let st = Propagate.Delta.create ix in
  let scratch = Propagate.Delta.create_scratch () in
  let cut = Link_set.of_list [ (asn 2, asn 4); (asn 3, asn 4) ] in
  let o, _ = Propagate.Delta.update st scratch ~failed:cut [ origin4 ] in
  check_int "only the origin routed while cut off" 1 (Propagate.routed_count o);
  let half = Link_set.of_list [ (asn 2, asn 4) ] in
  let o, _ = Propagate.Delta.update st scratch ~failed:half [ origin4 ] in
  check_int "restore reconnects everyone" 4 (Propagate.routed_count o);
  Alcotest.(check (list int)) "2 reroutes via peer 3" [ 2; 3; 4 ]
    (path_at o (asn 2))

(* Regression: Gao-Rexford preference is not monotone along an edge.
   Restoring 5-6 lets 5 switch from its provider route [5,2,1] (len 3) to
   the class-better peer route [5,6,7,8,1] (len 5); from its customer 9's
   perspective the candidate via 5 is provider-class either way, so it
   *worsened* (len 4 -> 6) and 9 must re-select its other provider 10. A
   pure improvement wave leaves 9 stranded on a stale via-5 entry (found
   by the lagged random-event sweep; shrunk from Topo_gen seed 22). *)
let test_delta_restore_class_up_len_up () =
  let g = As_graph.create () in
  List.iter (fun i -> As_graph.add_as g (asn i) (stub_info ""))
    [ 1; 2; 5; 6; 7; 8; 9; 10 ];
  let pc p c = As_graph.add_provider_customer g ~provider:(asn p) ~customer:(asn c) in
  pc 2 1; pc 2 5; pc 2 10;
  As_graph.add_peering g (asn 5) (asn 6);
  pc 6 7; pc 7 8; pc 8 1;
  pc 5 9; pc 10 9;
  let ix = As_graph.Indexed.of_graph g in
  let ann = [ Announcement.originate (asn 1) (pfx "10.0.0.0/24") ] in
  let st = Propagate.Delta.create ix in
  let scratch = Propagate.Delta.create_scratch () in
  let cut = Link_set.of_list [ (asn 5, asn 6) ] in
  let o, _ = Propagate.Delta.update st scratch ~failed:cut ann in
  (* Tie at 9 between providers 5 and 10 (both len 4): lower ASN wins. *)
  Alcotest.(check (list int)) "9 starts on 5" [ 9; 5; 2; 1 ] (path_at o (asn 9));
  let o, kind = Propagate.Delta.update st scratch ann in
  check_bool "restore is a delta step" true
    (match kind with Propagate.Delta.Steps _ -> true | _ -> false);
  Alcotest.(check (list int)) "5 takes the class-better peer route"
    [ 5; 6; 7; 8; 1 ] (path_at o (asn 5));
  check_bool "peer class at 5" true
    (Propagate.route_class_at o (asn 5) = Some `Peer);
  Alcotest.(check (list int)) "9 re-selects its other provider"
    [ 9; 10; 2; 1 ] (path_at o (asn 9));
  check_bool "whole outcome matches full compute" true
    (same_outcome
       (List.map asn [ 1; 2; 5; 6; 7; 8; 9; 10 ])
       o (Propagate.compute ix ann))

let test_delta_unsupported_falls_back () =
  let ix = diamond () in
  let st = Propagate.Delta.create ix in
  let scratch = Propagate.Delta.create_scratch () in
  let scoped =
    { origin4 with Announcement.export_to = Some (Asn.Set.of_list [ asn 2 ]) }
  in
  check_bool "scoped announcement is not delta-eligible" false
    (Propagate.Delta.supported [ scoped ]);
  let o, k = Propagate.Delta.update st scratch [ scoped ] in
  check_bool "falls back to a full rebuild" true (k = Propagate.Delta.Full_rebuild);
  (* The origin only announces to 2, so 3 must hear it the long way round. *)
  Alcotest.(check (list int)) "and honors the scoping" [ 3; 2; 4 ]
    (path_at o (asn 3));
  (* Still unsupported on the second identical call: never diffed. *)
  let _, k2 = Propagate.Delta.update st scratch [ scoped ] in
  check_bool "stays on the full path" true (k2 = Propagate.Delta.Full_rebuild)

(* Random event sequences over generated topologies: the delta state
   equals a fresh full compute at every sync point. Syncing only every
   [lag]-th event makes single updates apply several restores and fails
   back to back — the mix that exposed the stale-dependent bug the lag-1
   version of this law missed. *)
let prop_delta_equals_full =
  QCheck.Test.make ~name:"delta after random event sequence = full compute"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
       let rng = Rng.of_int seed in
       let g = Topo_gen.generate ~rng Topo_gen.small_params in
       let ix = As_graph.Indexed.of_graph g in
       let ases = As_graph.ases g in
       let links = Array.of_list (As_graph.links g) in
       let origin = Rng.pick rng (Array.of_list ases) in
       let anns_of prepend =
         [ Announcement.with_prepend prepend
             (Announcement.originate origin (pfx "10.0.0.0/24")) ]
       in
       let failed = ref Link_set.empty in
       let prepend = ref 0 in
       let lag = 1 + Rng.int rng 4 in
       let steps =
         List.filteri
           (fun i _ -> (i + 1) mod lag = 0)
           (List.init 16 (fun _ ->
                let roll = Rng.float rng 1.0 in
                if roll < 0.45 then begin
                  let a, b, _ = Rng.pick rng links in
                  failed := Link_set.add a b !failed
                end
                else if roll < 0.8 then begin
                  match Link_set.elements !failed with
                  | [] -> ()
                  | l ->
                      let a, b = Rng.pick rng (Array.of_list l) in
                      failed := Link_set.remove a b !failed
                end
                else prepend := (if !prepend = 0 then 2 else 0);
                (!failed, !prepend)))
       in
       delta_vs_full ix ases anns_of steps)

(* Frontier soundness: the reported frontier of a delta step is at least
   the number of ASes whose stored route record — class, next hop, or
   path length — changed. (Rendered AS paths can additionally change
   deep downstream when an upstream node swaps to an equal-quality next
   hop; those nodes' records are untouched and deliberately outside the
   frontier.) *)
let prop_delta_frontier_covers_changes =
  QCheck.Test.make ~name:"delta frontier covers every changed route"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
       let rng = Rng.of_int seed in
       let g = Topo_gen.generate ~rng Topo_gen.small_params in
       let ix = As_graph.Indexed.of_graph g in
       let ases = As_graph.ases g in
       let links = Array.of_list (As_graph.links g) in
       let origin = Rng.pick rng (Array.of_list ases) in
       let anns = [ Announcement.originate origin (pfx "10.0.0.0/24") ] in
       let a, b, _ = Rng.pick rng links in
       let failed = Link_set.of_list [ (a, b) ] in
       let st = Propagate.Delta.create ix in
       let scratch = Propagate.Delta.create_scratch () in
       let before = Propagate.copy (fst (Propagate.Delta.update st scratch anns)) in
       let after, kind = Propagate.Delta.update st scratch ~failed anns in
       let record outcome x =
         ( Propagate.route_class_at outcome x,
           Propagate.next_hop outcome x,
           match Propagate.route_at outcome x with
           | Some r -> List.length r.Route.as_path
           | None -> -1 )
       in
       let changed =
         List.length
           (List.filter (fun x -> record before x <> record after x) ases)
       in
       match kind with
       | Propagate.Delta.Steps { frontier; _ } -> frontier >= changed
       | Propagate.Delta.Full_rebuild -> false)

let prop_propagate_valley_free =
  QCheck.Test.make ~name:"propagation yields valley-free loop-free paths"
    ~count:15 QCheck.(int_bound 10_000)
    (fun seed ->
       let rng = Rng.of_int seed in
       let g = Topo_gen.generate ~rng Topo_gen.small_params in
       let ix = As_graph.Indexed.of_graph g in
       let ases = Array.of_list (As_graph.ases g) in
       let origin = Rng.pick rng ases in
       let ann = Announcement.originate origin (pfx "10.0.0.0/24") in
       let outcome = Propagate.compute ix [ ann ] in
       List.for_all
         (fun a ->
            match Propagate.route_at outcome a with
            | None -> true
            | Some r ->
                let path = r.Route.as_path in
                let distinct = List.sort_uniq Asn.compare path in
                List.length distinct = List.length path
                && Paths.valley_free g path)
         (Array.to_list ases))

let prop_propagate_connected_coverage =
  QCheck.Test.make ~name:"every AS gets a route in a connected topology"
    ~count:10 QCheck.(int_bound 10_000)
    (fun seed ->
       let rng = Rng.of_int seed in
       let g = Topo_gen.generate ~rng Topo_gen.small_params in
       let ix = As_graph.Indexed.of_graph g in
       let ases = Array.of_list (As_graph.ases g) in
       let origin = Rng.pick rng ases in
       let ann = Announcement.originate origin (pfx "10.0.0.0/24") in
       let outcome = Propagate.compute ix [ ann ] in
       Propagate.routed_count outcome = Array.length ases)

(* ---- Mrt ------------------------------------------------------------ *)

let sample_records () =
  [ { Mrt.timestamp = 1000.5;
      peer_as = asn 64512; local_as = asn 12654;
      peer_ip = Ipv4.of_string "192.0.2.1"; local_ip = Ipv4.of_string "192.0.2.254";
      message =
        Mrt.Update
          { withdrawn = [];
            as_path = [ asn 64512; asn 3356; asn 24940 ];
            next_hop = Some (Ipv4.of_string "192.0.2.1");
            communities = [ (64512, 666) ];
            nlri = [ pfx "78.46.0.0/15" ] } };
    { Mrt.timestamp = 1001.;
      peer_as = asn 64512; local_as = asn 12654;
      peer_ip = Ipv4.of_string "192.0.2.1"; local_ip = Ipv4.of_string "192.0.2.254";
      message =
        Mrt.Update
          { withdrawn = [ pfx "10.0.0.0/8"; pfx "10.1.0.0/16" ];
            as_path = []; next_hop = None; communities = []; nlri = [] } };
    { Mrt.timestamp = 1002.25;
      peer_as = asn 1; local_as = asn 12654;
      peer_ip = Ipv4.of_string "192.0.2.7"; local_ip = Ipv4.of_string "192.0.2.254";
      message = Mrt.Keepalive } ]

let test_mrt_roundtrip () =
  let records = sample_records () in
  let decoded = Mrt.decode (Mrt.encode records) in
  check_int "count" (List.length records) (List.length decoded);
  List.iter2
    (fun (a : Mrt.record) (b : Mrt.record) ->
       check_bool "timestamp" true
         (Float.abs (a.Mrt.timestamp -. b.Mrt.timestamp) < 1e-5);
       check_bool "peer as" true (Asn.equal a.Mrt.peer_as b.Mrt.peer_as);
       check_bool "message" true
         (match (a.Mrt.message, b.Mrt.message) with
          | Mrt.Keepalive, Mrt.Keepalive -> true
          | Mrt.Update u, Mrt.Update v ->
              List.equal Prefix.equal u.withdrawn v.withdrawn
              && List.equal Asn.equal u.as_path v.as_path
              && u.communities = v.communities
              && List.equal Prefix.equal u.nlri v.nlri
          | Mrt.Keepalive, Mrt.Update _ | Mrt.Update _, Mrt.Keepalive -> false))
    records decoded

let test_mrt_long_as_path () =
  let path = List.init 300 (fun i -> asn (i + 1)) in
  let r =
    { Mrt.timestamp = 0.; peer_as = asn 1; local_as = asn 2;
      peer_ip = Ipv4.of_string "192.0.2.1"; local_ip = Ipv4.of_string "192.0.2.2";
      message =
        Mrt.Update
          { withdrawn = []; as_path = path; next_hop = None; communities = [];
            nlri = [ pfx "10.0.0.0/8" ] } }
  in
  match Mrt.decode (Mrt.encode [ r ]) with
  | [ { Mrt.message = Mrt.Update u; _ } ] ->
      check_int "full path survives" 300 (List.length u.as_path);
      check_bool "order preserved" true (List.equal Asn.equal path u.as_path)
  | _ -> Alcotest.fail "expected one update"

let test_mrt_malformed () =
  check_bool "truncated raises" true
    (try ignore (Mrt.decode "\x00\x00\x00\x01\x00\x11"); false
     with Mrt.Malformed _ -> true);
  check_bool "garbage raises" true
    (try ignore (Mrt.decode (String.make 64 '\xAB')); false
     with Mrt.Malformed _ -> true)

let test_mrt_update_bridge () =
  let session = { Update.collector = "rrc00"; peer = asn 64512 } in
  let route = Route.make (pfx "10.0.0.0/8") [ asn 64512; asn 1 ] in
  let u = { Update.time = 42.5; session; kind = Update.Announce route } in
  let record =
    Mrt.record_of_update ~local_as:(asn 12654)
      ~local_ip:(Ipv4.of_string "192.0.2.254")
      ~peer_ip:(Ipv4.of_string "192.0.2.1") u
  in
  match Mrt.update_of_record ~collector:"rrc00" record with
  | [ u' ] ->
      check_bool "same session" true (Update.session_equal session u'.Update.session);
      check_bool "same prefix" true (Prefix.equal (Update.prefix u) (Update.prefix u'));
      check_bool "announce survives" true (Update.is_announce u')
  | _ -> Alcotest.fail "expected one update"

let prop_mrt_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 10)
        (map2
           (fun addr len -> Prefix.make (Ipv4.of_int_trunc addr) len)
           (map (fun x -> x * 256) (int_bound 0xFFFFFF))
           (int_range 8 32)))
  in
  QCheck.Test.make ~name:"mrt nlri roundtrip" ~count:100 (QCheck.make gen)
    (fun nlri ->
       let r =
         { Mrt.timestamp = 77.; peer_as = asn 5; local_as = asn 6;
           peer_ip = Ipv4.of_string "192.0.2.1";
           local_ip = Ipv4.of_string "192.0.2.2";
           message =
             Mrt.Update
               { withdrawn = []; as_path = [ asn 5 ]; next_hop = None;
                 communities = []; nlri } }
       in
       match Mrt.decode (Mrt.encode [ r ]) with
       | [ { Mrt.message = Mrt.Update u; _ } ] ->
           List.equal Prefix.equal nlri u.nlri
       | _ -> false)

let small_world seed =
  let rng = Rng.of_int seed in
  let g = Topo_gen.generate ~rng:(Rng.split rng) Topo_gen.small_params in
  let addressing = Addressing.allocate ~rng:(Rng.split rng) g in
  let collectors =
    Collector.standard_setup ~rng:(Rng.split rng) ~sessions_per_collector:4 g addressing
  in
  (rng, Dynamics.make_world g addressing collectors)

let tiny_config =
  { Dynamics.short_config with
    Dynamics.duration = 6. *. 3600.;
    base_churn_rate = 0.2;
    resets_per_session = 0.2 }

(* ---- Rpki and ROV ----------------------------------------------------- *)

let test_rpki_validation () =
  let t =
    Rpki.add_roa Rpki.empty
      { Rpki.roa_prefix = pfx "78.46.0.0/15"; max_length = 20; authorized = asn 5 }
  in
  check_bool "valid exact" true
    (Rpki.validate t (pfx "78.46.0.0/15") (asn 5) = Rpki.Valid);
  check_bool "valid within max length" true
    (Rpki.validate t (pfx "78.46.16.0/20") (asn 5) = Rpki.Valid);
  check_bool "invalid origin" true
    (Rpki.validate t (pfx "78.46.0.0/15") (asn 6) = Rpki.Invalid);
  check_bool "invalid over-specific" true
    (Rpki.validate t (pfx "78.46.16.0/24") (asn 5) = Rpki.Invalid);
  check_bool "not found outside" true
    (Rpki.validate t (pfx "10.0.0.0/8") (asn 5) = Rpki.Not_found);
  check_bool "bad max length rejected" true
    (try ignore (Rpki.add_roa Rpki.empty
                   { Rpki.roa_prefix = pfx "10.0.0.0/16"; max_length = 8;
                     authorized = asn 1 }); false
     with Invalid_argument _ -> true)

let test_add_roa_bounds () =
  let roa max_length =
    { Rpki.roa_prefix = pfx "10.0.0.0/16"; max_length; authorized = asn 1 }
  in
  let rejects ml =
    try ignore (Rpki.add_roa Rpki.empty (roa ml)); false
    with Invalid_argument _ -> true
  in
  (* boundaries: exactly the prefix length and exactly /32 are legal *)
  check_int "max_length = length accepted" 1 (Rpki.size (Rpki.add_roa Rpki.empty (roa 16)));
  check_int "max_length = 32 accepted" 1 (Rpki.size (Rpki.add_roa Rpki.empty (roa 32)));
  check_bool "max_length below length rejected" true (rejects 15);
  check_bool "max_length above 32 rejected" true (rejects 33);
  check_bool "negative max_length rejected" true (rejects (-1));
  (* a /32 ROA leaves no slack: only max_length 32 works *)
  let host_roa ml =
    { Rpki.roa_prefix = pfx "10.0.0.1/32"; max_length = ml; authorized = asn 1 }
  in
  check_int "host ROA accepted" 1 (Rpki.size (Rpki.add_roa Rpki.empty (host_roa 32)));
  check_bool "host ROA max_length 31 rejected" true
    (try ignore (Rpki.add_roa Rpki.empty (host_roa 31)); false
     with Invalid_argument _ -> true);
  (* max_length slack widens what validates, never the origin *)
  let t = Rpki.add_roa Rpki.empty (roa 24) in
  check_bool "more-specific within slack valid" true
    (Rpki.validate t (pfx "10.0.1.0/24") (asn 1) = Rpki.Valid);
  check_bool "beyond slack invalid" true
    (Rpki.validate t (pfx "10.0.1.0/25") (asn 1) = Rpki.Invalid);
  check_bool "slack does not authorize another origin" true
    (Rpki.validate t (pfx "10.0.1.0/24") (asn 2) = Rpki.Invalid)

let test_rov_blocks_origin_hijack () =
  (* diamond: victim 4 announces; attacker 1 hijacks; with ROV at 2 and 3
     the hijack goes nowhere because 1's bogus origin is Invalid. *)
  let graph = diamond () in
  let table =
    Rpki.add_roa Rpki.empty
      { Rpki.roa_prefix = pfx "10.0.0.0/24"; max_length = 24; authorized = asn 4 }
  in
  let bogus = Announcement.originate (asn 1) (pfx "10.0.0.0/24") in
  let deployers = Asn.Set.of_list [ asn 2; asn 3 ] in
  let outcome =
    Propagate.compute graph ~rov:(table, deployers) [ origin4; bogus ]
  in
  check_bool "2 keeps legit route" true
    (Propagate.winning_announcement outcome (asn 2) = Some 0);
  check_bool "3 keeps legit route" true
    (Propagate.winning_announcement outcome (asn 3) = Some 0);
  (* 1 originates the bogus route itself and keeps it *)
  check_bool "attacker keeps own" true
    (Propagate.winning_announcement outcome (asn 1) = Some 1)

let test_rov_spares_forged_origin () =
  (* interception-style forged origin ([1; 4]) presents a Valid origin, so
     even full ROV deployment does not stop it *)
  let graph = diamond () in
  let table =
    Rpki.add_roa Rpki.empty
      { Rpki.roa_prefix = pfx "10.0.0.0/24"; max_length = 24; authorized = asn 4 }
  in
  let forged =
    Announcement.originate (asn 1) (pfx "10.0.0.0/24")
    |> Announcement.with_fake_suffix [ asn 4 ]
  in
  let all = Asn.Set.of_list [ asn 1; asn 2; asn 3; asn 4 ] in
  let outcome = Propagate.compute graph ~rov:(table, all) [ forged ] in
  check_bool "forged origin passes ROV at 2" true (Propagate.has_route outcome (asn 2));
  check_bool "forged origin passes ROV at 3" true (Propagate.has_route outcome (asn 3))

(* ---- TABLE_DUMP_V2 ---------------------------------------------------- *)

let test_rib_roundtrip () =
  let rib =
    { Mrt.rib_time = 5000.;
      collector_id = Ipv4.of_string "192.0.2.254";
      view_name = "quicksand-bview";
      peers = [| (Ipv4.of_string "192.0.2.1", asn 64512);
                 (Ipv4.of_string "192.0.2.2", asn 3356) |];
      rib_entries =
        [ (pfx "78.46.0.0/15",
           [ (0, Route.make (pfx "78.46.0.0/15") [ asn 64512; asn 24940 ]);
             (1, Route.make (pfx "78.46.0.0/15") [ asn 3356; asn 24940 ]) ]);
          (pfx "10.0.0.0/8",
           [ (1, Route.make (pfx "10.0.0.0/8") [ asn 3356; asn 7018 ]) ]) ] }
  in
  let rib' = Mrt.decode_rib (Mrt.encode_rib rib) in
  check_bool "view name" true (rib'.Mrt.view_name = rib.Mrt.view_name);
  check_int "peer count" 2 (Array.length rib'.Mrt.peers);
  check_bool "peer ASes" true
    (Asn.equal (snd rib'.Mrt.peers.(1)) (asn 3356));
  check_int "entry count" 2 (List.length rib'.Mrt.rib_entries);
  let p, entries = List.hd rib'.Mrt.rib_entries in
  check_bool "first prefix" true (Prefix.equal p (pfx "78.46.0.0/15"));
  check_int "entries for first prefix" 2 (List.length entries);
  let idx, route = List.hd entries in
  check_int "peer index" 0 idx;
  check_bool "path survives" true
    (List.equal Asn.equal route.Route.as_path [ asn 64512; asn 24940 ])

let test_rib_of_initial () =
  let rng, world = small_world 21 in
  let initial, _ = Dynamics.run ~rng tiny_config world ~emit:(fun _ -> ()) in
  let rib =
    Mrt.rib_of_initial ~time:0. ~collector_id:(Ipv4.of_string "192.0.2.254")
      ~view_name:"bview" ~peer_ip:(fun _ -> Ipv4.of_string "192.0.2.1")
      initial
  in
  let total_routes =
    Update.Session_map.fold
      (fun _ table acc -> acc + Prefix.Map.cardinal table)
      initial 0
  in
  let rib_routes =
    List.fold_left (fun acc (_, es) -> acc + List.length es) 0 rib.Mrt.rib_entries
  in
  check_int "every table entry present" total_routes rib_routes;
  let rib' = Mrt.decode_rib (Mrt.encode_rib rib) in
  check_int "roundtrip preserves routes" rib_routes
    (List.fold_left (fun acc (_, es) -> acc + List.length es) 0 rib'.Mrt.rib_entries)

(* ---- Collector ------------------------------------------------------ *)

let test_collector_visibility_rules () =
  let session feed =
    { Collector.id = { Update.collector = "rrc00"; peer = asn 1 };
      peer_ip = Ipv4.of_string "192.0.2.1"; feed }
  in
  check_bool "full sees provider" true
    (Collector.visible (session Collector.Full) ~route_class:`Provider);
  check_bool "c+p sees peer" true
    (Collector.visible (session Collector.Customer_and_peer) ~route_class:`Peer);
  check_bool "c+p hides provider" false
    (Collector.visible (session Collector.Customer_and_peer) ~route_class:`Provider);
  check_bool "c-only hides peer" false
    (Collector.visible (session Collector.Customer_only) ~route_class:`Peer);
  check_bool "c-only sees origin" true
    (Collector.visible (session Collector.Customer_only) ~route_class:`Origin)

let test_collector_setup () =
  let rng = Rng.of_int 3 in
  let g = Topo_gen.generate ~rng:(Rng.split rng) Topo_gen.small_params in
  let addressing = Addressing.allocate ~rng:(Rng.split rng) g in
  let collectors = Collector.standard_setup ~rng ~sessions_per_collector:5 g addressing in
  check_int "four collectors" 4 (List.length collectors);
  List.iter
    (fun c ->
       check_int "five sessions" 5 (List.length c.Collector.sessions);
       let peers = List.map (fun s -> s.Collector.id.Update.peer) c.Collector.sessions in
       check_int "distinct peers" 5 (List.length (List.sort_uniq Asn.compare peers)))
    collectors

(* ---- Session_reset --------------------------------------------------- *)

let mk_update time peer p path =
  { Update.time;
    session = { Update.collector = "rrc00"; peer = asn peer };
    kind = Update.Announce (Route.make p (List.map asn path)) }

let test_reset_filter_passes_normal () =
  let out = ref [] in
  let f = Session_reset.create ~emit:(fun u -> out := u :: !out) () in
  for i = 0 to 19 do
    Session_reset.push f
      (mk_update (float_of_int (i * 400)) 1 (pfx "10.0.0.0/8") [ 1; 2 ])
  done;
  Session_reset.flush f;
  check_int "all passed" 20 (List.length !out);
  let stats = Session_reset.stats f in
  check_int "nothing dropped" 0 stats.Session_reset.dropped;
  check_int "no bursts" 0 (List.length stats.Session_reset.bursts)

let test_reset_filter_drops_table_transfer () =
  let out = ref [] in
  let config = { Session_reset.default_config with Session_reset.min_prefixes = 50 } in
  let f = Session_reset.create ~config ~emit:(fun u -> out := u :: !out) () in
  Session_reset.preload_table f { Update.collector = "rrc00"; peer = asn 1 } 200;
  Session_reset.push f (mk_update 0. 1 (pfx "10.0.0.0/8") [ 1; 2 ]);
  for i = 0 to 199 do
    let p = Prefix.make (Ipv4.of_octets 10 (i mod 256) 0 0) 16 in
    Session_reset.push f (mk_update (5000. +. (float_of_int i *. 0.1)) 1 p [ 1; 2 ])
  done;
  Session_reset.push f (mk_update 9000. 1 (pfx "10.0.0.0/8") [ 1; 3 ]);
  Session_reset.flush f;
  let stats = Session_reset.stats f in
  check_int "one burst detected" 1 (List.length stats.Session_reset.bursts);
  check_bool "most of the transfer dropped" true (stats.Session_reset.dropped >= 150);
  check_bool "normal updates survive" true
    (List.exists (fun u -> u.Update.time = 0.) !out
     && List.exists (fun u -> u.Update.time = 9000.) !out)

let test_reset_filter_per_session () =
  let out = ref [] in
  let config = { Session_reset.default_config with Session_reset.min_prefixes = 50 } in
  let f = Session_reset.create ~config ~emit:(fun u -> out := u :: !out) () in
  for i = 0 to 99 do
    let p = Prefix.make (Ipv4.of_octets 10 i 0 0) 16 in
    Session_reset.push f (mk_update (float_of_int i *. 0.1) 1 p [ 1; 2 ]);
    if i mod 10 = 0 then
      Session_reset.push f
        (mk_update (float_of_int i *. 0.1) 2 (pfx "11.0.0.0/8") [ 2; 3 ])
  done;
  Session_reset.flush f;
  let b_updates =
    List.filter (fun u -> Asn.to_int u.Update.session.Update.peer = 2) !out
  in
  check_int "other session untouched" 10 (List.length b_updates)

(* ---- Dynamics -------------------------------------------------------- *)

let test_dynamics_time_ordered () =
  let rng, world = small_world 5 in
  let last = ref neg_infinity in
  let monotone = ref true in
  let _, stats =
    Dynamics.run ~rng tiny_config world ~emit:(fun u ->
        if u.Update.time < !last then monotone := false;
        last := u.Update.time)
  in
  check_bool "emitted in time order" true !monotone;
  check_bool "something happened" true (stats.Dynamics.updates_emitted > 0)

let test_dynamics_paths_start_with_peer () =
  let rng, world = small_world 6 in
  let ok = ref true in
  let _, _ =
    Dynamics.run ~rng tiny_config world ~emit:(fun u ->
        match u.Update.kind with
        | Update.Announce r ->
            if not (Asn.equal (Route.first_hop r) u.Update.session.Update.peer) then
              ok := false
        | Update.Withdraw _ -> ())
  in
  check_bool "exported paths start with the session peer" true !ok

let test_dynamics_initial_consistent () =
  let rng, world = small_world 7 in
  let initial, _ = Dynamics.run ~rng tiny_config world ~emit:(fun _ -> ()) in
  Update.Session_map.iter
    (fun session table ->
       Prefix.Map.iter
         (fun p (r : Route.t) ->
            check_bool "table keyed by route prefix" true
              (Prefix.equal p r.Route.prefix);
            check_bool "route from the session peer" true
              (Asn.equal (Route.first_hop r) session.Update.peer))
         table)
    initial

let test_dynamics_deterministic () =
  let run seed =
    let rng, world = small_world seed in
    let count = ref 0 in
    let _, stats = Dynamics.run ~rng tiny_config world ~emit:(fun _ -> incr count) in
    (!count, stats.Dynamics.churn_events)
  in
  check_bool "same seed, same stream" true (run 9 = run 9)

let test_dynamics_stats_consistent () =
  let rng, world = small_world 10 in
  let count = ref 0 in
  let _, stats = Dynamics.run ~rng tiny_config world ~emit:(fun _ -> incr count) in
  check_int "emit count matches stats" !count stats.Dynamics.updates_emitted;
  check_int "announce+withdraw = total"
    stats.Dynamics.updates_emitted
    (stats.Dynamics.announces + stats.Dynamics.withdraws)

(* Convergence delays and reset replays near the end of the run schedule
   updates past the horizon; those must be dropped and counted, never
   emitted. Seed 5 under [tiny_config] overshoots reliably. *)
let test_dynamics_horizon_clamp () =
  let rng, world = small_world 5 in
  let max_t = ref neg_infinity in
  let _, stats =
    Dynamics.run ~rng tiny_config world ~emit:(fun u ->
        max_t := Float.max !max_t u.Update.time)
  in
  check_bool "no update beyond the horizon" true
    (!max_t <= tiny_config.Dynamics.duration);
  check_bool "overshooting updates counted as dropped" true
    (stats.Dynamics.post_horizon_dropped > 0)

(* Revert events scheduled past the horizon must still restore the
   failed-link state to baseline (without emitting anything). *)
let test_dynamics_reverts_past_horizon () =
  List.iter
    (fun seed ->
       let rng, world = small_world seed in
       let _, stats = Dynamics.run ~rng tiny_config world ~emit:(fun _ -> ()) in
       check_bool "all failures reverted by the end" true
         (Link_set.is_empty stats.Dynamics.final_failed))
    [ 5; 9; 23 ]

let dynamics_stream config world rng =
  let buf = Buffer.create (1 lsl 16) in
  let ppf = Format.formatter_of_buffer buf in
  let _, stats =
    Dynamics.run ~rng config world ~emit:(fun u ->
        Format.fprintf ppf "%a@." Update.pp u)
  in
  Format.pp_print_flush ppf ();
  (Buffer.contents buf, stats)

(* The route cache is a pure memoization: same seed, byte-identical
   rendered stream with the cache on and off. *)
let test_dynamics_cache_transparent () =
  let cached_cfg = { tiny_config with Dynamics.route_cache_size = 64 } in
  let uncached_cfg = { tiny_config with Dynamics.route_cache_size = 0 } in
  let rng, world = small_world 11 in
  let cached, cs = dynamics_stream cached_cfg world rng in
  let rng, world = small_world 11 in
  let uncached, us = dynamics_stream uncached_cfg world rng in
  check_bool "streams byte-identical" true (String.equal cached uncached);
  check_bool "cache actually used" true (cs.Dynamics.cache_hits > 0);
  check_int "uncached run has no hits" 0 us.Dynamics.cache_hits;
  check_int "hits + computes = outcome requests"
    (us.Dynamics.full_recomputations + us.Dynamics.delta_steps)
    (cs.Dynamics.cache_hits + cs.Dynamics.full_recomputations
     + cs.Dynamics.delta_steps)

let prop_dynamics_cache_identical =
  QCheck.Test.make ~name:"cache on/off streams identical across seeds"
    ~count:5
    QCheck.(int_bound 1000)
    (fun seed ->
       let run cache_size =
         let rng, world = small_world seed in
         dynamics_stream
           { tiny_config with Dynamics.route_cache_size = cache_size }
           world rng
       in
       let cached, _ = run 32 in
       let uncached, _ = run 0 in
       String.equal cached uncached)

(* The delta engine is a pure reimplementation of propagation: same seed,
   byte-identical stream with delta repair on and off (and the delta run
   must actually take delta steps for the claim to mean anything). *)
let test_dynamics_delta_transparent () =
  let run delta_states =
    let rng, world = small_world 13 in
    dynamics_stream
      { tiny_config with
        Dynamics.route_cache_size = 0; delta_states }
      world rng
  in
  let on, s_on = run 4096 in
  let off, s_off = run 0 in
  check_bool "streams byte-identical" true (String.equal on off);
  check_bool "delta steps taken" true (s_on.Dynamics.delta_steps > 0);
  check_int "delta-off runs everything full" 0 s_off.Dynamics.delta_steps;
  check_bool "delta replaces full recomputes" true
    (s_on.Dynamics.full_recomputations < s_off.Dynamics.full_recomputations);
  check_int "engines agree on request count"
    s_off.Dynamics.full_recomputations
    (s_on.Dynamics.full_recomputations + s_on.Dynamics.delta_steps)

(* A tiny delta-state LRU forces evictions and cold rebuilds mid-run;
   the stream must not care. *)
let test_dynamics_delta_eviction_transparent () =
  let run delta_states =
    let rng, world = small_world 17 in
    dynamics_stream
      { tiny_config with Dynamics.route_cache_size = 0; delta_states }
      world rng
  in
  let tiny, s_tiny = run 2 in
  let big, _ = run 4096 in
  check_bool "streams byte-identical under eviction pressure" true
    (String.equal tiny big);
  check_bool "evictions actually happened (cold rebuilds beyond seeding)"
    true
    (s_tiny.Dynamics.full_recomputations > 0)

let prop_dynamics_delta_identical =
  QCheck.Test.make ~name:"delta on/off streams identical across seeds"
    ~count:5
    QCheck.(int_bound 1000)
    (fun seed ->
       let run delta_states =
         let rng, world = small_world seed in
         dynamics_stream
           { tiny_config with Dynamics.route_cache_size = 0; delta_states }
           world rng
       in
       let on, _ = run 4096 in
       let off, _ = run 0 in
       String.equal on off)

(* Property: the reset filter never drops anything from a burst-free
   stream (sparse updates across many prefixes). *)
let prop_reset_filter_no_false_positives =
  QCheck.Test.make ~name:"reset filter passes burst-free streams" ~count:50
    QCheck.(pair (int_bound 1000) (int_range 1 60))
    (fun (seed, n) ->
       let rng = Rng.of_int seed in
       let out = ref 0 in
       let f = Session_reset.create ~emit:(fun _ -> incr out) () in
       let time = ref 0. in
       for i = 0 to n - 1 do
         time := !time +. 200. +. Rng.float rng 400.;
         Session_reset.push f
           (mk_update !time 1
              (Prefix.make (Ipv4.of_octets 10 (i mod 200) 0 0) 16)
              [ 1; 2 ])
       done;
       Session_reset.flush f;
       !out = n && (Session_reset.stats f).Session_reset.bursts = [])

(* Property: ROV never changes routing when nothing is invalid. *)
let prop_rov_noop_when_valid =
  QCheck.Test.make ~name:"ROV is a no-op for valid announcements" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
       let rng = Rng.of_int seed in
       let g = Topo_gen.generate ~rng Topo_gen.small_params in
       let ix = As_graph.Indexed.of_graph g in
       let addressing = Addressing.allocate ~rng g in
       let table = Rpki.of_addressing addressing in
       let all = Asn.Set.of_list (As_graph.ases g) in
       match Addressing.announced addressing with
       | [] -> true
       | (p, o) :: _ ->
           let ann = Announcement.originate o p in
           let plain = Propagate.compute ix [ ann ] in
           let roved = Propagate.compute ix ~rov:(table, all) [ ann ] in
           List.for_all
             (fun a ->
                match (Propagate.route_at plain a, Propagate.route_at roved a) with
                | Some r1, Some r2 -> Route.equal r1 r2
                | None, None -> true
                | Some _, None | None, Some _ -> false)
             (As_graph.ases g))

(* Property: RIB snapshots round-trip for arbitrary peer/entry shapes. *)
let prop_rib_roundtrip =
  let gen =
    QCheck.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 1 12)
           (pair (map (fun x -> (x * 1024) land 0xFFFFFF00) nat) (int_range 8 30))))
  in
  QCheck.Test.make ~name:"TABLE_DUMP_V2 roundtrip" ~count:60 (QCheck.make gen)
    (fun (n_peers, raw_prefixes) ->
       let peers =
         Array.init n_peers (fun i ->
             (Ipv4.of_octets 192 0 2 (i + 1), asn (64512 + i)))
       in
       let rib_entries =
         raw_prefixes
         |> List.map (fun (addr, len) -> Prefix.make (Ipv4.of_int_trunc addr) len)
         |> List.sort_uniq Prefix.compare
         |> List.map (fun p ->
             (p, [ (0, Route.make p [ asn 64512; asn 1 ]) ]))
       in
       let rib =
         { Mrt.rib_time = 100.; collector_id = Ipv4.of_octets 192 0 2 254;
           view_name = "v"; peers; rib_entries }
       in
       let rib' = Mrt.decode_rib (Mrt.encode_rib rib) in
       Array.length rib'.Mrt.peers = n_peers
       && List.length rib'.Mrt.rib_entries = List.length rib_entries
       && List.for_all2
            (fun (p, _) (p', _) -> Prefix.equal p p')
            rib_entries rib'.Mrt.rib_entries)

(* Property: under any single failed link, propagation still yields
   valley-free loop-free routes. *)
let prop_propagate_failure_valley_free =
  QCheck.Test.make ~name:"valley-free under random link failure" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
       let rng = Rng.of_int seed in
       let g = Topo_gen.generate ~rng Topo_gen.small_params in
       let ix = As_graph.Indexed.of_graph g in
       let ases = Array.of_list (As_graph.ases g) in
       let links = Array.of_list (As_graph.links g) in
       let a, b, _ = Rng.pick rng links in
       let failed = Link_set.of_list [ (a, b) ] in
       let origin = Rng.pick rng ases in
       let ann = Announcement.originate origin (pfx "10.0.0.0/24") in
       let outcome = Propagate.compute ix ~failed [ ann ] in
       List.for_all
         (fun x ->
            match Propagate.route_at outcome x with
            | None -> true
            | Some r ->
                let path = r.Route.as_path in
                let distinct = List.sort_uniq Asn.compare path in
                List.length distinct = List.length path
                && Paths.valley_free g path
                (* the failed link never appears on a selected path *)
                && (let rec uses = function
                      | x1 :: (x2 :: _ as rest) ->
                          (Asn.equal x1 a && Asn.equal x2 b)
                          || (Asn.equal x1 b && Asn.equal x2 a)
                          || uses rest
                      | _ -> false
                    in
                    not (uses path)))
         (Array.to_list ases))

let qsuite = List.map (fun t -> QCheck_alcotest.to_alcotest t)

let () =
  Alcotest.run "qs_bgp"
    [ ("route",
       [ Alcotest.test_case "basics" `Quick test_route_basics;
         Alcotest.test_case "as-set vs prepending" `Quick test_route_as_set_prepending;
         Alcotest.test_case "empty rejected" `Quick test_route_empty_rejected ]);
      ("link_set", [ Alcotest.test_case "normalization" `Quick test_link_set ]);
      ("propagate",
       [ Alcotest.test_case "diamond" `Quick test_propagate_diamond;
         Alcotest.test_case "customer over peer" `Quick
           test_propagate_prefer_customer_over_peer;
         Alcotest.test_case "peer route selected" `Quick
           test_propagate_peer_route_selected;
         Alcotest.test_case "valley-free exports" `Quick
           test_propagate_valley_free_exports;
         Alcotest.test_case "failed link" `Quick test_propagate_failed_link;
         Alcotest.test_case "disconnection" `Quick test_propagate_disconnected;
         Alcotest.test_case "prepending" `Quick test_propagate_prepending;
         Alcotest.test_case "export_to scoping" `Quick test_propagate_export_to;
         Alcotest.test_case "max radius" `Quick test_propagate_max_radius;
         Alcotest.test_case "loop detection" `Quick test_propagate_loop_detection;
         Alcotest.test_case "multiple origins" `Quick test_propagate_multi_origin;
         Alcotest.test_case "forwarding path" `Quick test_propagate_forwarding_path;
         Alcotest.test_case "candidates" `Quick test_propagate_candidates;
         Alcotest.test_case "rejects empty" `Quick test_propagate_rejects;
         Alcotest.test_case "workspace clobbers retained outcome" `Quick
           test_workspace_clobbers_retained_outcome;
         Alcotest.test_case "copy owns its arrays" `Quick test_copy_owns_arrays;
         Alcotest.test_case "workspace+copy allocation bound" `Quick
           test_workspace_copy_alloc_bound ]
       @ qsuite [ prop_propagate_valley_free; prop_propagate_connected_coverage;
                  prop_propagate_failure_valley_free ]);
      ("delta",
       [ Alcotest.test_case "matches full on diamond sequence" `Quick
           test_delta_matches_full_diamond;
         Alcotest.test_case "stop-early off-tree" `Quick
           test_delta_stop_early_off_tree;
         Alcotest.test_case "restore creates routes" `Quick
           test_delta_restore_creates_route;
         Alcotest.test_case "restore class-up/len-up re-selects dependents"
           `Quick test_delta_restore_class_up_len_up;
         Alcotest.test_case "unsupported shapes fall back" `Quick
           test_delta_unsupported_falls_back ]
       @ qsuite [ prop_delta_equals_full; prop_delta_frontier_covers_changes ]);
      ("mrt",
       [ Alcotest.test_case "roundtrip" `Quick test_mrt_roundtrip;
         Alcotest.test_case "long AS path" `Quick test_mrt_long_as_path;
         Alcotest.test_case "malformed input" `Quick test_mrt_malformed;
         Alcotest.test_case "update bridge" `Quick test_mrt_update_bridge ]
       @ qsuite [ prop_mrt_roundtrip ]);
      ("rpki",
       (qsuite [ prop_rov_noop_when_valid ])
       @ [ Alcotest.test_case "validation semantics" `Quick test_rpki_validation;
         Alcotest.test_case "add_roa bounds" `Quick test_add_roa_bounds;
         Alcotest.test_case "ROV blocks origin hijack" `Quick
           test_rov_blocks_origin_hijack;
         Alcotest.test_case "ROV spares forged origin" `Quick
           test_rov_spares_forged_origin ]);
      ("table_dump_v2",
       (qsuite [ prop_rib_roundtrip ])
       @ [ Alcotest.test_case "rib roundtrip" `Quick test_rib_roundtrip;
         Alcotest.test_case "rib of initial tables" `Quick test_rib_of_initial ]);
      ("collector",
       [ Alcotest.test_case "visibility rules" `Quick test_collector_visibility_rules;
         Alcotest.test_case "standard setup" `Quick test_collector_setup ]);
      ("session_reset",
       (qsuite [ prop_reset_filter_no_false_positives ])
       @ [ Alcotest.test_case "passes normal traffic" `Quick
           test_reset_filter_passes_normal;
         Alcotest.test_case "drops table transfers" `Quick
           test_reset_filter_drops_table_transfer;
         Alcotest.test_case "per-session isolation" `Quick
           test_reset_filter_per_session ]);
      ("dynamics",
       [ Alcotest.test_case "time ordered" `Quick test_dynamics_time_ordered;
         Alcotest.test_case "paths start with peer" `Quick
           test_dynamics_paths_start_with_peer;
         Alcotest.test_case "initial tables consistent" `Quick
           test_dynamics_initial_consistent;
         Alcotest.test_case "deterministic" `Quick test_dynamics_deterministic;
         Alcotest.test_case "stats consistent" `Quick test_dynamics_stats_consistent;
         Alcotest.test_case "horizon clamp" `Quick test_dynamics_horizon_clamp;
         Alcotest.test_case "reverts past horizon" `Quick
           test_dynamics_reverts_past_horizon;
         Alcotest.test_case "cache transparent" `Quick
           test_dynamics_cache_transparent;
         Alcotest.test_case "delta transparent" `Quick
           test_dynamics_delta_transparent;
         Alcotest.test_case "delta eviction transparent" `Quick
           test_dynamics_delta_eviction_transparent ]
       @ qsuite [ prop_dynamics_cache_identical; prop_dynamics_delta_identical ]) ]
