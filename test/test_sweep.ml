(* Tests for qs_sweep: binding parsing and canonicalization, base-chain
   resolution, row-major matrix expansion, the static validator's problem
   classes (the deeper per-class checks live in test_lint.ml with QS308),
   the dynamics presets, and the runner's determinism contract — equal
   bytes across worker counts and reruns, and measurement-equal results
   for the obs on/off ablation. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let entry ?base ?(overlay = []) ?(axes = []) name =
  { Sweep.name; doc = "test entry"; base; overlay; axes }

let set_exn v key value =
  match Sweep.set v ~key ~value with
  | Ok v -> v
  | Error msg -> Alcotest.fail (key ^ "=" ^ value ^ ": " ^ msg)

(* ---- bindings ---------------------------------------------------------- *)

let test_set_parses_and_ranges () =
  let v = Sweep.default_vars in
  check_bool "size" true ((set_exn v "size" "paper").Sweep.size = Scenario.Paper);
  check_int "seed" 7 (set_exn v "seed" "7").Sweep.seed;
  check_bool "churn" true ((set_exn v "churn" "heavy").Sweep.churn = Sweep.Heavy);
  check_bool "obs off" false (set_exn v "obs" "off").Sweep.obs;
  check_bool "guards none" true
    ((set_exn v "guards" "none").Sweep.guards = Sweep.No_guards);
  check_bool "guards rotating" true
    ((set_exn v "guards" "2/15").Sweep.guards
     = Sweep.Guards { n = 2; rotation_days = 15 });
  check_bool "guards never" true
    ((set_exn v "guards" "2/never").Sweep.guards
     = Sweep.Guards { n = 2; rotation_days = max_int });
  let rejected key value =
    match Sweep.set v ~key ~value with Ok _ -> false | Error _ -> true
  in
  check_bool "unknown key rejected" true (rejected "sise" "small");
  check_bool "bad size rejected" true (rejected "size" "medium");
  check_bool "negative seed rejected" true (rejected "seed" "-1");
  check_bool "zero days rejected" true (rejected "days" "0");
  check_bool "oversized days rejected" true (rejected "days" "400");
  check_bool "adversary above 1 rejected" true (rejected "adversary" "1.5");
  check_bool "negative cache rejected" true (rejected "cache" "-4");
  check_bool "negative threshold rejected" true (rejected "threshold" "-1");
  check_bool "guards 0/10 rejected" true (rejected "guards" "0/10");
  check_bool "guards garbage rejected" true (rejected "guards" "three");
  check_bool "trace churn accepted" true (not (rejected "churn" "trace-pareto"));
  check_bool "bad consensus rejected" true (rejected "consensus" "thawed");
  check_bool "living consensus accepted" true
    (not (rejected "consensus" "live-hourly"))

let test_canonical_bindings () =
  (* Values normalize: any accepted spelling of one value must produce
     one canonical binding list, because the fingerprint digests it. *)
  let v1 = set_exn Sweep.default_vars "days" "1.0" in
  let v2 = set_exn Sweep.default_vars "days" "1" in
  check_bool "normalized spellings agree" true
    (Sweep.canonical_bindings v1 = Sweep.canonical_bindings v2);
  let keys = List.map fst (Sweep.canonical_bindings Sweep.default_vars) in
  check_bool "keys sorted" true (keys = List.sort String.compare keys);
  check_bool "seed and size excluded" true
    (not (List.mem "seed" keys) && not (List.mem "size" keys));
  let id1 = Sweep.identity Sweep.default_vars in
  let id2 = Sweep.identity (set_exn Sweep.default_vars "seed" "2") in
  check_bool "identity covers the seed" true (id1 <> id2)

(* ---- dynamics presets -------------------------------------------------- *)

let test_dynamics_presets () =
  let v =
    List.fold_left
      (fun v (k, x) -> set_exn v k x)
      Sweep.default_vars
      [ ("days", "2"); ("cache", "7"); ("delta", "9") ]
  in
  let d = Sweep.dynamics v in
  Alcotest.(check (float 1e-6)) "duration" (2. *. 86_400.) d.Dynamics.duration;
  check_int "cache capacity" 7 d.Dynamics.route_cache_size;
  check_int "delta capacity" 9 d.Dynamics.delta_states;
  let base = Dynamics.short_config in
  let calm = Sweep.dynamics (set_exn v "churn" "calm") in
  check_bool "calm quarters the churn rate" true
    (calm.Dynamics.base_churn_rate = base.Dynamics.base_churn_rate *. 0.25);
  let heavy = Sweep.dynamics (set_exn v "churn" "heavy") in
  check_bool "heavy raises the churn rate" true
    (heavy.Dynamics.base_churn_rate > base.Dynamics.base_churn_rate);
  check_bool "heavy shortens outages" true
    (heavy.Dynamics.mean_outage < base.Dynamics.mean_outage);
  let trace = Sweep.dynamics (set_exn v "churn" "trace-pareto") in
  check_bool "trace layers session churn over baseline rates" true
    (trace.Dynamics.session_churn = Some Churn.pareto_day
     && trace.Dynamics.base_churn_rate = base.Dynamics.base_churn_rate);
  check_bool "other models leave session churn off" true
    (heavy.Dynamics.session_churn = None)

(* ---- expansion --------------------------------------------------------- *)

let test_expansion_row_major () =
  let e = Option.get (Sweep.find Sweep.builtin "seeds-2x2") in
  match Sweep.cells e with
  | Error _ -> Alcotest.fail "seeds-2x2 must expand"
  | Ok cells ->
      check_int "cell count" 4 (List.length cells);
      let bindings = List.map (fun c -> c.Sweep.bindings) cells in
      check_bool "row-major, last axis fastest" true
        (bindings
         = [ [ ("seed", "1"); ("churn", "calm") ];
             [ ("seed", "1"); ("churn", "heavy") ];
             [ ("seed", "2"); ("churn", "calm") ];
             [ ("seed", "2"); ("churn", "heavy") ] ]);
      check_bool "indices sequential" true
        (List.mapi (fun i _ -> i) cells
         = List.map (fun c -> c.Sweep.index) cells);
      check_str "slug" "cell-000-seed=1,churn=calm"
        (Sweep.slug (List.hd cells))

let test_base_chain () =
  let e = Option.get (Sweep.find Sweep.builtin "churn-day") in
  match Sweep.cells e with
  | Error _ -> Alcotest.fail "churn-day must expand"
  | Ok cells ->
      let v = (List.hd cells).Sweep.vars in
      check_bool "base overlay inherited" true
        (v.Sweep.size = Scenario.Small && v.Sweep.days = 1.);
      check_bool "own overlay applied over base" true
        (v.Sweep.churn = Sweep.Heavy)

let test_validate_problems () =
  let problem registry name =
    List.map (fun (i : Sweep.invalid) -> i.Sweep.problem)
      (Sweep.validate ~registry (Option.get (Sweep.find registry name)))
  in
  check_bool "clean entry" true
    (Sweep.validate (entry "ok" ~overlay:[ ("days", "2") ]) = []);
  check_bool "axes not inherited from base" true
    (problem
       [ entry "p" ~axes:[ ("seed", [ "1"; "2" ]) ]; entry "c" ~base:"p" ]
       "c"
     = []);
  check_bool "duplicate cell detected through normalization" true
    (List.mem "duplicate-cell"
       (problem
          [ entry "e" ~axes:[ ("days", [ "1"; "1.0" ]) ] ]
          "e"));
  check_bool "builtin registry valid" true
    (Sweep.validate_registry Sweep.builtin = [])

(* ---- runner determinism ------------------------------------------------ *)

(* A deliberately tiny matrix (about half an hour of simulated Small-world
   BGP per cell) so the determinism contract is checked on every test
   run, not only in CI's full 2x2 sweep. *)
let tiny_axes axes = entry "tiny" ~overlay:[ ("days", "0.02") ] ~axes

let registry_with e = e :: Sweep.builtin

let run_exn ?exec e =
  match Sweep_run.run ~registry:(registry_with e) ?exec e with
  | Ok t -> t
  | Error _ -> Alcotest.fail "tiny matrix must run"

let strip_run (t : Sweep_run.t) =
  ( t.Sweep_run.index_json,
    List.map
      (fun (r : Sweep_run.cell_result) ->
         (r.Sweep_run.slug, r.Sweep_run.fingerprint, r.Sweep_run.summary_json,
          r.Sweep_run.metrics_json))
      t.Sweep_run.results )

let test_run_deterministic () =
  let e = tiny_axes [ ("seed", [ "1"; "2" ]) ] in
  let at jobs = Pool.with_pool ~jobs (fun exec -> strip_run (run_exn ~exec e)) in
  let r1 = at 1 in
  check_bool "jobs=1 equals jobs=2" true (r1 = at 2);
  check_bool "rerun identical" true (r1 = at 1);
  let fingerprints = List.map (fun (_, fp, _, _) -> fp) (snd r1) in
  check_int "distinct cells, distinct fingerprints" 2
    (List.length (List.sort_uniq String.compare fingerprints))

let test_run_obs_ablation () =
  (* The AB-obs contract, ported onto the registry: instrumentation must
     never change a measured number, so the obs=off and obs=on cells
     agree on every headline (their identities still differ — obs is a
     canonical binding). *)
  let t = run_exn (tiny_axes [ ("obs", [ "off"; "on" ]) ]) in
  match t.Sweep_run.results with
  | [ off; on ] ->
      check_bool "headlines identical" true
        (off.Sweep_run.headline = on.Sweep_run.headline);
      check_bool "identities differ" true
        (off.Sweep_run.fingerprint <> on.Sweep_run.fingerprint)
  | _ -> Alcotest.fail "expected two cells"

let test_run_rejects_invalid () =
  let bad = entry "bad" ~overlay:[ ("churn", "torrential") ] in
  match Sweep_run.run ~registry:(registry_with bad) bad with
  | Ok _ -> Alcotest.fail "invalid entry must not run"
  | Error invalids ->
      check_bool "carries the validator's finding" true
        (List.exists
           (fun (i : Sweep.invalid) -> i.Sweep.problem = "bad-value")
           invalids)

(* Trace-shaped churn under the determinism contract: a tiny matrix based
   on the builtin churn-trace-day entry (so its base chain and overlay are
   exercised) must render byte-identical artifacts at jobs=1, jobs=4 and
   on rerun — the generator's merge order, not the worker count, decides
   every byte. *)
let test_run_trace_churn_deterministic () =
  let e =
    { Sweep.name = "trace-tiny";
      doc = "churn-trace-day shortened for the unit suite";
      base = Some "churn-trace-day";
      overlay = [ ("days", "0.05") ];
      axes = [] }
  in
  let at jobs = Pool.with_pool ~jobs (fun exec -> strip_run (run_exn ~exec e)) in
  let r1 = at 1 in
  check_bool "jobs=1 equals jobs=4" true (r1 = at 4);
  check_bool "rerun identical" true (r1 = at 1);
  (match run_exn e with
   | { Sweep_run.results = [ r ]; _ } ->
       check_bool "trace cell sees churn events" true
         (r.Sweep_run.headline.Sweep_run.updates > 0)
   | _ -> Alcotest.fail "expected one cell")

let test_write_layout () =
  let t = run_exn (tiny_axes [ ("seed", [ "1" ]) ]) in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "qs-sweep-test" in
  let written = Sweep_run.write ~dir t in
  check_int "index, table and three files per cell" 5 (List.length written);
  List.iter
    (fun p -> check_bool (p ^ " exists") true (Sys.file_exists p))
    written;
  let slug = (List.hd t.Sweep_run.results).Sweep_run.slug in
  check_bool "summary.json under the slug dir" true
    (List.mem (Filename.concat (Filename.concat dir slug) "summary.json")
       written);
  List.iter Sys.remove written;
  Sys.rmdir (Filename.concat dir slug);
  Sys.rmdir dir

let () =
  Alcotest.run "qs_sweep"
    [ ("bindings",
       [ Alcotest.test_case "set parses and range-checks" `Quick
           test_set_parses_and_ranges;
         Alcotest.test_case "canonical bindings" `Quick
           test_canonical_bindings;
         Alcotest.test_case "dynamics presets" `Quick test_dynamics_presets ]);
      ("expansion",
       [ Alcotest.test_case "row-major order" `Quick test_expansion_row_major;
         Alcotest.test_case "base chain" `Quick test_base_chain;
         Alcotest.test_case "validator problems" `Quick
           test_validate_problems ]);
      ("runner",
       [ Alcotest.test_case "deterministic across jobs and reruns" `Quick
           test_run_deterministic;
         Alcotest.test_case "obs ablation measurement-equal" `Quick
           test_run_obs_ablation;
         Alcotest.test_case "invalid entry rejected" `Quick
           test_run_rejects_invalid;
         Alcotest.test_case "trace churn deterministic across jobs" `Quick
           test_run_trace_churn_deterministic;
         Alcotest.test_case "results layout" `Quick test_write_layout ]) ]
