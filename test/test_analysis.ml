(* Tests for qs_analysis: stats, CCDFs, correlation, anonymity metrics. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_floatish = Alcotest.(check (float 1e-3))

(* ---- Stats ----------------------------------------------------------- *)

let test_stats_basics () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "mean" 3. (Stats.mean xs);
  check_float "median" 3. (Stats.median xs);
  check_float "variance" 2. (Stats.variance xs);
  check_float "min" 1. (Stats.minimum xs);
  check_float "max" 5. (Stats.maximum xs)

let test_stats_percentile_interpolation () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  check_float "p0" 10. (Stats.percentile xs 0.);
  check_float "p100" 40. (Stats.percentile xs 100.);
  check_float "p50 interpolated" 25. (Stats.percentile xs 50.);
  check_float "p75" 32.5 (Stats.percentile xs 75.)

let test_stats_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats: empty sample")
    (fun () -> ignore (Stats.mean []));
  Alcotest.check_raises "bad percentile"
    (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Stats.percentile [ 1. ] 150.))

let test_stats_singleton () =
  check_float "singleton percentile" 7. (Stats.percentile [ 7. ] 50.)

(* ---- Ccdf ------------------------------------------------------------ *)

let test_ccdf_basics () =
  let c = Ccdf.of_samples [ 1.; 2.; 2.; 3.; 10. ] in
  check_int "size" 5 (Ccdf.size c);
  check_float "at -inf" 1.0 (Ccdf.at c 0.);
  check_float "at 1" 1.0 (Ccdf.at c 1.);
  check_float "at 2" 0.8 (Ccdf.at c 2.);
  check_float "at 2.5" 0.4 (Ccdf.at c 2.5);
  check_float "at 10" 0.2 (Ccdf.at c 10.);
  check_float "beyond" 0.0 (Ccdf.at c 11.)

let test_ccdf_points_monotone () =
  let c = Ccdf.of_samples [ 5.; 1.; 3.; 3.; 8.; 0.5 ] in
  let pts = Ccdf.points c in
  let rec decreasing = function
    | (_, p1) :: ((_, p2) :: _ as rest) -> p1 >= p2 && decreasing rest
    | [ _ ] | [] -> true
  in
  check_bool "ccdf non-increasing" true (decreasing pts);
  check_int "distinct xs" 5 (List.length pts)

let test_ccdf_quantile_where () =
  let c = Ccdf.of_samples [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
  (match Ccdf.quantile_where c 0.2 with
   | Some x -> check_float "tail boundary" 9. x
   | None -> Alcotest.fail "expected a quantile")

(* When q is below the tail mass at the maximum, the maximum sample is
   the tightest answer — never [None] on non-empty samples. *)
let test_ccdf_quantile_below_tail_mass () =
  let c = Ccdf.of_samples [ 1.; 2.; 3.; 4. ] in
  (* at c 4. = 0.25, so q = 0.1 is below the tail mass at the max *)
  (match Ccdf.quantile_where c 0.1 with
   | Some x -> check_float "max sample" 4. x
   | None -> Alcotest.fail "q below tail mass must yield the max sample");
  (match Ccdf.quantile_where c 0.25 with
   | Some x -> check_float "exact tail boundary" 4. x
   | None -> Alcotest.fail "expected a quantile");
  (match Ccdf.quantile_where c 0.5 with
   | Some x -> check_float "median tail" 3. x
   | None -> Alcotest.fail "expected a quantile");
  match Ccdf.quantile_where c 0. with
  | Some x -> check_float "q = 0 yields the max" 4. x
  | None -> Alcotest.fail "q = 0 must yield the max sample"

(* The remaining boundaries of the documented contract ("the smallest
   sample with at <= q"): q >= 1 is satisfied by every sample, so the
   minimum comes back; all-equal samples put the whole mass at one value,
   so any q < 1 falls back to that value (which is also the max); a
   singleton answers every q with its only sample. *)
let test_ccdf_quantile_boundaries () =
  let expect name want q c =
    match Ccdf.quantile_where c q with
    | Some x -> check_float name want x
    | None -> Alcotest.fail (name ^ ": expected a quantile")
  in
  let c = Ccdf.of_samples [ 1.; 2.; 3.; 4. ] in
  expect "q = 1 yields the min" 1. 1.0 c;
  expect "q > 1 yields the min" 1. 1.5 c;
  let flat = Ccdf.of_samples [ 5.; 5.; 5. ] in
  expect "all-equal, q = 1" 5. 1.0 flat;
  expect "all-equal, q = 0.5" 5. 0.5 flat;
  expect "all-equal, q = 0" 5. 0. flat;
  let one = Ccdf.of_samples [ 7. ] in
  expect "singleton, q = 1" 7. 1.0 one;
  expect "singleton, q = 0.5" 7. 0.5 one;
  expect "singleton, q = 0" 7. 0. one

(* Regression: [of_samples []] used to raise, forcing callers (F3L/F3R)
   to pad a phantom [0.] sample — which made a quiet measurement report
   [at 0. = 1.0] instead of an empty tail. The empty CCDF must be total:
   zero size, zero mass everywhere, no points, no quantile. *)
let test_ccdf_empty_total () =
  let c = Ccdf.of_samples [] in
  check_int "size" 0 (Ccdf.size c);
  check_float "at 0" 0. (Ccdf.at c 0.);
  check_float "at -1" 0. (Ccdf.at c (-1.));
  check_float "at 1e9" 0. (Ccdf.at c 1e9);
  check_bool "no points" true (Ccdf.points c = []);
  check_bool "eval_at carries zeros" true
    (Ccdf.eval_at c [ 1.; 2. ] = [ (1., 0.); (2., 0.) ]);
  (match Ccdf.quantile_where c 0.5 with
   | None -> ()
   | Some _ -> Alcotest.fail "empty sample must have no quantile");
  match Ccdf.quantile_where c 0. with
  | None -> ()
  | Some _ -> Alcotest.fail "empty sample must have no quantile at q = 0"

let prop_ccdf_in_unit_interval =
  QCheck.Test.make ~name:"ccdf values in [0,1]" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 50) (map Float.abs float)) float)
    (fun (xs, q) ->
       let c = Ccdf.of_samples xs in
       let v = Ccdf.at c q in
       v >= 0. && v <= 1.)

(* ---- Correlation ------------------------------------------------------ *)

let test_pearson_perfect () =
  let a = [| 1.; 2.; 3.; 4. |] in
  let b = [| 2.; 4.; 6.; 8. |] in
  check_floatish "perfect positive" 1.0 (Correlation.pearson a b);
  let c = [| 8.; 6.; 4.; 2. |] in
  check_floatish "perfect negative" (-1.0) (Correlation.pearson a c)

let test_pearson_constant_series () =
  check_float "constant gives 0" 0.
    (Correlation.pearson [| 1.; 1.; 1. |] [| 1.; 2.; 3. |])

let test_pearson_rejects () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Correlation: length mismatch")
    (fun () -> ignore (Correlation.pearson [| 1. |] [| 1.; 2. |]))

let test_spearman_monotone () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  let b = [| 1.; 8.; 27.; 64.; 125. |] in
  check_floatish "monotone nonlinear = 1" 1.0 (Correlation.spearman a b);
  (* ties handled with average ranks *)
  let c = [| 1.; 1.; 2.; 3.; 3. |] in
  check_bool "ties fine" true (Correlation.spearman c c > 0.999)

let test_best_lag_recovers_shift () =
  let n = 60 in
  let base = Array.init n (fun i -> sin (float_of_int i /. 3.) +. (0.1 *. float_of_int (i mod 5))) in
  let shifted = Array.init n (fun i -> if i < 4 then 0. else base.(i - 4)) in
  let lag, r = Correlation.best_lag shifted base ~max_lag:8 in
  check_int "recovers the 4-bin shift" 4 lag;
  check_bool "high correlation at best lag" true (r > 0.95)

let test_match_score_picks_right () =
  let target = Array.init 50 (fun i -> float_of_int ((i * 7) mod 13)) in
  let decoy1 = Array.init 50 (fun i -> float_of_int ((i * 3) mod 11)) in
  let decoy2 = Array.init 50 (fun i -> float_of_int ((i * 5) mod 17)) in
  let idx = Correlation.match_score target ~target:[ decoy1; target; decoy2 ] ~max_lag:3 in
  check_int "identifies the matching flow" 1 idx

let prop_pearson_symmetric =
  let gen =
    QCheck.Gen.(list_size (int_range 2 30) (map (fun x -> Float.rem x 100.) float))
  in
  QCheck.Test.make ~name:"pearson symmetric and bounded" ~count:200
    (QCheck.make (QCheck.Gen.pair gen gen))
    (fun (xs, ys) ->
       let n = min (List.length xs) (List.length ys) in
       QCheck.assume (n >= 2);
       let a = Array.of_list (List.filteri (fun i _ -> i < n) xs) in
       let b = Array.of_list (List.filteri (fun i _ -> i < n) ys) in
       let r1 = Correlation.pearson a b and r2 = Correlation.pearson b a in
       Float.abs (r1 -. r2) < 1e-9 && r1 >= -1.0000001 && r1 <= 1.0000001)

(* ---- Anonymity -------------------------------------------------------- *)

let test_compromise_formula () =
  check_float "x=0 is 0" 0. (Anonymity.compromise_probability ~f:0.1 ~x:0);
  check_float "f=1 is 1" 1. (Anonymity.compromise_probability ~f:1.0 ~x:1);
  check_floatish "1-(1-0.1)^2" 0.19 (Anonymity.compromise_probability ~f:0.1 ~x:2);
  check_bool "monotone in x" true
    (Anonymity.compromise_probability ~f:0.05 ~x:10
     > Anonymity.compromise_probability ~f:0.05 ~x:5)

let test_multi_guard_amplification () =
  let single = Anonymity.compromise_probability ~f:0.05 ~x:4 in
  let multi = Anonymity.multi_guard_probability ~f:0.05 ~x:4 ~l:3 in
  check_bool "3 guards amplify" true (multi > single);
  check_floatish "l*x exponent" (Anonymity.compromise_probability ~f:0.05 ~x:12) multi

let test_compromise_rejects () =
  check_bool "bad f" true
    (try ignore (Anonymity.compromise_probability ~f:1.5 ~x:1); false
     with Invalid_argument _ -> true);
  check_bool "bad x" true
    (try ignore (Anonymity.compromise_probability ~f:0.5 ~x:(-1)); false
     with Invalid_argument _ -> true)

let test_monte_carlo_agrees () =
  let rng = Rng.of_int 42 in
  let f = 0.05 and exposed = 8 in
  let mc =
    Anonymity.monte_carlo_compromise ~rng ~trials:20_000 ~universe:500 ~f ~exposed
  in
  let analytic = Anonymity.compromise_probability ~f ~x:exposed in
  check_bool "within 2 points" true (Float.abs (mc -. analytic) < 0.02)

let test_time_to_compromise () =
  let rng = Rng.of_int 7 in
  (match Anonymity.time_to_compromise ~rng ~per_instance:1.0 ~max_instances:10 with
   | Some 1 -> ()
   | _ -> Alcotest.fail "certain compromise must hit instance 1");
  check_bool "never with p=0" true
    (Anonymity.time_to_compromise ~rng ~per_instance:0.0 ~max_instances:100 = None)

let test_entropy () =
  check_float "uniform 4 = 2 bits" 2. (Anonymity.entropy [ 0.25; 0.25; 0.25; 0.25 ]);
  check_float "deterministic = 0" 0. (Anonymity.entropy [ 1.0 ]);
  check_float "set entropy" 3. (Anonymity.anonymity_set_entropy 8);
  check_bool "bad distribution" true
    (try ignore (Anonymity.entropy [ 0.5 ]); false
     with Invalid_argument _ -> true)

let prop_compromise_monotone =
  QCheck.Test.make ~name:"compromise probability monotone in f and x" ~count:300
    QCheck.(triple (int_bound 100) (int_bound 30) (int_bound 30))
    (fun (fi, x1, x2) ->
       let f = float_of_int fi /. 100. in
       let lo = min x1 x2 and hi = max x1 x2 in
       let p_lo = Anonymity.compromise_probability ~f ~x:lo in
       let p_hi = Anonymity.compromise_probability ~f ~x:hi in
       p_lo >= 0. && p_hi <= 1. && p_lo <= p_hi +. 1e-12)

let prop_multi_guard_amplifies =
  QCheck.Test.make ~name:"more guards never reduce compromise" ~count:300
    QCheck.(triple (int_range 1 99) (int_range 0 20) (int_range 1 9))
    (fun (fi, x, l) ->
       let f = float_of_int fi /. 100. in
       Anonymity.multi_guard_probability ~f ~x ~l
       >= Anonymity.compromise_probability ~f ~x -. 1e-12)

let prop_trace_acked_consistent =
  (* the per-bin ACK increments always sum to the running-max ACK *)
  QCheck.Test.make ~name:"acked series sums to max ack" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (pair (int_bound 1000) (int_bound 100000)))
    (fun events ->
       let t = Trace.create () in
       List.iteri
         (fun i (dt, ack) ->
            Trace.tap t
              (float_of_int (i * 100 + dt) /. 100.)
              { Netsim.src = Ipv4.of_int_trunc 1; dst = Ipv4.of_int_trunc 2;
                sport = 1; dport = 2; seq = 0; ack; payload = 0; wnd = 0;
                syn = false; fin = false })
         events;
       let duration = float_of_int (List.length events) +. 10. in
       let series = Trace.bytes_acked_series t ~bin:1.0 ~duration in
       let total = Array.fold_left ( +. ) 0. series in
       Float.abs (total -. float_of_int (Trace.max_ack t)) < 0.5)

let qsuite = List.map (fun t -> QCheck_alcotest.to_alcotest t)

let () =
  Alcotest.run "qs_analysis"
    [ ("stats",
       [ Alcotest.test_case "basics" `Quick test_stats_basics;
         Alcotest.test_case "percentile interpolation" `Quick
           test_stats_percentile_interpolation;
         Alcotest.test_case "rejects" `Quick test_stats_rejects;
         Alcotest.test_case "singleton" `Quick test_stats_singleton ]);
      ("ccdf",
       [ Alcotest.test_case "basics" `Quick test_ccdf_basics;
         Alcotest.test_case "monotone points" `Quick test_ccdf_points_monotone;
         Alcotest.test_case "quantile_where" `Quick test_ccdf_quantile_where;
         Alcotest.test_case "quantile below tail mass" `Quick
           test_ccdf_quantile_below_tail_mass;
         Alcotest.test_case "quantile boundaries" `Quick
           test_ccdf_quantile_boundaries;
         Alcotest.test_case "empty sample is total" `Quick
           test_ccdf_empty_total ]
       @ qsuite [ prop_ccdf_in_unit_interval ]);
      ("correlation",
       [ Alcotest.test_case "pearson perfect" `Quick test_pearson_perfect;
         Alcotest.test_case "constant series" `Quick test_pearson_constant_series;
         Alcotest.test_case "rejects" `Quick test_pearson_rejects;
         Alcotest.test_case "spearman monotone" `Quick test_spearman_monotone;
         Alcotest.test_case "best lag" `Quick test_best_lag_recovers_shift;
         Alcotest.test_case "match score" `Quick test_match_score_picks_right ]
       @ qsuite [ prop_pearson_symmetric; prop_trace_acked_consistent ]);
      ("anonymity",
       [ Alcotest.test_case "compromise formula" `Quick test_compromise_formula;
         Alcotest.test_case "multi-guard amplification" `Quick
           test_multi_guard_amplification;
         Alcotest.test_case "rejects" `Quick test_compromise_rejects;
         Alcotest.test_case "monte carlo agrees" `Quick test_monte_carlo_agrees;
         Alcotest.test_case "time to compromise" `Quick test_time_to_compromise;
         Alcotest.test_case "entropy" `Quick test_entropy ]
       @ qsuite [ prop_compromise_monotone; prop_multi_guard_amplifies ]) ]
