(* Unit and property tests for qs_net: RNG, IPv4, prefixes, trie, pqueue. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- Rng ----------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.of_int 7 and b = Rng.of_int 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.of_int 7 in
  let c = Rng.split a in
  let x = Rng.int64 a and y = Rng.int64 c in
  check_bool "split streams differ" true (not (Int64.equal x y))

let test_rng_split_n_stable () =
  (* split_n must be equivalent to n sequential splits, in order — the
     executor's per-item streams depend on this exact correspondence. *)
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  let siblings = Rng.split_n a 8 in
  let manual = Array.init 8 (fun _ -> Rng.split b) in
  Array.iteri
    (fun i s ->
       Alcotest.(check int64)
         (Printf.sprintf "sibling %d matches a sequential split" i)
         (Rng.int64 manual.(i)) (Rng.int64 s))
    siblings;
  (* and the parents end up in the same state *)
  Alcotest.(check int64) "parents advanced identically" (Rng.int64 b) (Rng.int64 a);
  check_int "empty split allowed" 0 (Array.length (Rng.split_n (Rng.of_int 1) 0));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Rng.split_n: negative count")
    (fun () -> ignore (Rng.split_n (Rng.of_int 1) (-1)))

let test_rng_split_n_independent () =
  (* Sibling streams must look unrelated: distinct outputs and a Pearson
     correlation near zero between any adjacent pair. *)
  let siblings = Rng.split_n (Rng.of_int 99) 6 in
  let n = 2_000 in
  let seqs =
    Array.map (fun s -> Array.init n (fun _ -> Rng.float s 1.0)) siblings
  in
  for i = 0 to Array.length seqs - 2 do
    let x = seqs.(i) and y = seqs.(i + 1) in
    check_bool "distinct streams" true (x.(0) <> y.(0) || x.(1) <> y.(1));
    let mean a = Array.fold_left ( +. ) 0. a /. float_of_int n in
    let mx = mean x and my = mean y in
    let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
    for k = 0 to n - 1 do
      let dx = x.(k) -. mx and dy = y.(k) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    let r = !sxy /. sqrt (!sxx *. !syy) in
    check_bool
      (Printf.sprintf "siblings %d,%d uncorrelated (r=%g)" i (i + 1) r)
      true
      (Float.abs r < 0.15)
  done

let test_rng_int_bounds () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects () =
  let rng = Rng.of_int 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.of_int 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    check_bool "in range" true (v >= 0. && v < 2.5)
  done

let test_rng_weighted_index () =
  let rng = Rng.of_int 5 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Rng.weighted_index rng [| 1.; 2.; 7. |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_bool "heaviest wins" true (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  let frac2 = float_of_int counts.(2) /. 30_000. in
  check_bool "roughly 0.7" true (Float.abs (frac2 -. 0.7) < 0.05)

let test_rng_weighted_rejects () =
  let rng = Rng.of_int 5 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.weighted_index: all-zero weights")
    (fun () -> ignore (Rng.weighted_index rng [| 0.; 0. |]))

let test_rng_shuffle_permutation () =
  let rng = Rng.of_int 13 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.of_int 17 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Rng.sample_without_replacement rng 8 arr in
  check_int "8 elements" 8 (List.length s);
  check_int "distinct" 8 (List.length (List.sort_uniq Int.compare s));
  let all = Rng.sample_without_replacement rng 50 arr in
  check_int "capped at n" 20 (List.length all)

let test_rng_exponential_mean () =
  let rng = Rng.of_int 23 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 2.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean ~ 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_geometric () =
  let rng = Rng.of_int 29 in
  check_int "p=1 is 0" 0 (Rng.geometric rng 1.0);
  for _ = 1 to 1000 do
    check_bool "non-negative" true (Rng.geometric rng 0.3 >= 0)
  done

(* ---- Ipv4 ----------------------------------------------------------- *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> check_string "roundtrip" s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "10.1.2.3"; "255.255.255.255"; "192.168.0.1"; "78.46.0.0" ]

let test_ipv4_rejects () =
  List.iter
    (fun s ->
       check_bool (Printf.sprintf "reject %s" s) true
         (Option.is_none (Ipv4.of_string_opt s)))
    [ "256.0.0.1"; "1.2.3"; "1.2.3.4.5"; "a.b.c.d"; ""; "1..2.3"; "-1.2.3.4" ]

let test_ipv4_bits () =
  let a = Ipv4.of_string "128.0.0.1" in
  check_bool "msb set" true (Ipv4.bit a 0);
  check_bool "bit 1 clear" false (Ipv4.bit a 1);
  check_bool "lsb set" true (Ipv4.bit a 31)

let test_ipv4_arith () =
  check_string "succ wraps" "0.0.0.0"
    (Ipv4.to_string (Ipv4.succ (Ipv4.of_string "255.255.255.255")));
  check_string "add" "10.0.1.0"
    (Ipv4.to_string (Ipv4.add (Ipv4.of_string "10.0.0.0") 256))

let prop_ipv4_string_roundtrip =
  QCheck.Test.make ~name:"ipv4 of_string/to_string roundtrip" ~count:500
    QCheck.(quad (int_bound 255) (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, c, d) ->
       let ip = Ipv4.of_octets a b c d in
       Ipv4.equal ip (Ipv4.of_string (Ipv4.to_string ip)))

(* ---- Prefix --------------------------------------------------------- *)

let test_prefix_canonical () =
  let p = Prefix.make (Ipv4.of_string "10.1.2.3") 8 in
  check_string "host bits zeroed" "10.0.0.0/8" (Prefix.to_string p)

let test_prefix_mem () =
  let p = Prefix.of_string "78.46.0.0/15" in
  check_bool "inside" true (Prefix.mem (Ipv4.of_string "78.47.255.255") p);
  check_bool "outside" false (Prefix.mem (Ipv4.of_string "78.48.0.0") p)

let test_prefix_subsumes () =
  let p15 = Prefix.of_string "78.46.0.0/15" in
  let p20 = Prefix.of_string "78.46.16.0/20" in
  check_bool "p15 subsumes p20" true (Prefix.subsumes p15 p20);
  check_bool "p20 not subsumes p15" false (Prefix.subsumes p20 p15);
  check_bool "self" true (Prefix.subsumes p15 p15);
  check_bool "overlap" true (Prefix.overlaps p20 p15)

let test_prefix_split () =
  let p = Prefix.of_string "10.0.0.0/8" in
  let lo, hi = Prefix.split p in
  check_string "low half" "10.0.0.0/9" (Prefix.to_string lo);
  check_string "high half" "10.128.0.0/9" (Prefix.to_string hi);
  Alcotest.check_raises "cannot split /32"
    (Invalid_argument "Prefix.split: cannot split a /32")
    (fun () -> ignore (Prefix.split (Prefix.host (Ipv4.of_string "1.2.3.4"))))

let test_prefix_nth () =
  let p = Prefix.of_string "10.0.0.0/30" in
  check_string "nth 3" "10.0.0.3" (Ipv4.to_string (Prefix.nth p 3));
  Alcotest.check_raises "nth out of range"
    (Invalid_argument "Prefix.nth: index out of range")
    (fun () -> ignore (Prefix.nth p 4))

let prefix_gen =
  QCheck.Gen.(
    map2
      (fun addr len -> Prefix.make (Ipv4.of_int_trunc addr) len)
      (int_bound 0xFFFFFFF |> map (fun x -> x * 16))
      (int_bound 32))

let arbitrary_prefix = QCheck.make ~print:Prefix.to_string prefix_gen

let prop_prefix_split_partitions =
  QCheck.Test.make ~name:"split halves partition the parent" ~count:300
    arbitrary_prefix
    (fun p ->
       QCheck.assume (Prefix.length p < 32);
       let lo, hi = Prefix.split p in
       Prefix.subsumes p lo && Prefix.subsumes p hi
       && (not (Prefix.overlaps lo hi))
       && Prefix.size lo + Prefix.size hi = Prefix.size p)

let prop_prefix_mem_first_last =
  QCheck.Test.make ~name:"first and last are members" ~count:300
    arbitrary_prefix
    (fun p -> Prefix.mem (Prefix.first p) p && Prefix.mem (Prefix.last p) p)

(* ---- Prefix_trie ---------------------------------------------------- *)

let test_trie_basics () =
  let t =
    Prefix_trie.empty
    |> Prefix_trie.add (Prefix.of_string "10.0.0.0/8") "a"
    |> Prefix_trie.add (Prefix.of_string "10.1.0.0/16") "b"
    |> Prefix_trie.add (Prefix.of_string "10.1.2.0/24") "c"
  in
  check_int "cardinal" 3 (Prefix_trie.cardinal t);
  Alcotest.(check (option string)) "exact find"
    (Some "b") (Prefix_trie.find (Prefix.of_string "10.1.0.0/16") t);
  (match Prefix_trie.longest_match (Ipv4.of_string "10.1.2.3") t with
   | Some (p, v) ->
       check_string "lpm prefix" "10.1.2.0/24" (Prefix.to_string p);
       check_string "lpm value" "c" v
   | None -> Alcotest.fail "expected a match");
  (match Prefix_trie.longest_match (Ipv4.of_string "10.9.0.1") t with
   | Some (p, _) -> check_string "falls back" "10.0.0.0/8" (Prefix.to_string p)
   | None -> Alcotest.fail "expected a match");
  check_bool "no match outside" true
    (Option.is_none (Prefix_trie.longest_match (Ipv4.of_string "11.0.0.1") t))

let test_trie_remove () =
  let p = Prefix.of_string "10.1.0.0/16" in
  let t = Prefix_trie.add p 1 Prefix_trie.empty in
  let t = Prefix_trie.remove p t in
  check_bool "removed" true (Prefix_trie.is_empty t)

let test_trie_matches_order () =
  let t =
    Prefix_trie.of_list
      [ (Prefix.of_string "10.0.0.0/8", 8);
        (Prefix.of_string "10.1.0.0/16", 16);
        (Prefix.of_string "10.1.2.0/24", 24) ]
  in
  let ms = Prefix_trie.matches (Ipv4.of_string "10.1.2.3") t in
  Alcotest.(check (list int)) "most specific first" [ 24; 16; 8 ]
    (List.map snd ms)

let test_trie_covered () =
  let t =
    Prefix_trie.of_list
      [ (Prefix.of_string "10.0.0.0/8", ());
        (Prefix.of_string "10.1.0.0/16", ());
        (Prefix.of_string "10.2.0.0/16", ());
        (Prefix.of_string "11.0.0.0/8", ()) ]
  in
  let covered = Prefix_trie.covered (Prefix.of_string "10.0.0.0/8") t in
  check_int "three inside" 3 (List.length covered);
  let covered16 = Prefix_trie.covered (Prefix.of_string "10.1.0.0/16") t in
  check_int "one inside /16" 1 (List.length covered16)

let test_trie_fold_order () =
  let ps =
    [ "10.0.0.0/8"; "9.0.0.0/8"; "10.1.0.0/16"; "11.0.0.0/8"; "10.0.0.0/7" ]
    |> List.map Prefix.of_string
  in
  let t = Prefix_trie.of_list (List.map (fun p -> (p, ())) ps) in
  let keys = Prefix_trie.keys t in
  let sorted = List.sort Prefix.compare ps in
  Alcotest.(check (list string)) "fold in Prefix.compare order"
    (List.map Prefix.to_string sorted)
    (List.map Prefix.to_string keys)

let prop_trie_lpm_vs_brute_force =
  let pair_gen = QCheck.Gen.(list_size (int_range 1 30) prefix_gen) in
  QCheck.Test.make ~name:"trie longest_match equals brute force" ~count:200
    (QCheck.make pair_gen)
    (fun prefixes ->
       let entries = List.mapi (fun i p -> (p, i)) prefixes in
       let t = Prefix_trie.of_list entries in
       (* dedup (later binding wins in trie) mirrored in the assoc list *)
       let dedup =
         List.fold_left (fun acc (p, i) ->
             (p, i) :: List.filter (fun (q, _) -> not (Prefix.equal p q)) acc)
           [] entries
       in
       let addr = Ipv4.of_int_trunc (Hashtbl.hash prefixes * 2654435761) in
       let brute =
         dedup
         |> List.filter (fun (p, _) -> Prefix.mem addr p)
         |> List.sort (fun (p, _) (q, _) ->
             Int.compare (Prefix.length q) (Prefix.length p))
       in
       match (Prefix_trie.longest_match addr t, brute) with
       | None, [] -> true
       | Some (p, _), (q, _) :: _ -> Prefix.length p = Prefix.length q && Prefix.mem addr p
       | Some _, [] | None, _ :: _ -> false)

let prop_trie_add_find =
  QCheck.Test.make ~name:"add then find" ~count:300
    QCheck.(pair arbitrary_prefix small_int)
    (fun (p, v) ->
       let t = Prefix_trie.add p v Prefix_trie.empty in
       Prefix_trie.find p t = Some v)

(* ---- Pqueue --------------------------------------------------------- *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun (k, v) -> Pqueue.push q k v)
    [ (3., "c"); (1., "a"); (2., "b"); (0.5, "z") ];
  let drained = List.map snd (Pqueue.drain q) in
  Alcotest.(check (list string)) "key order" [ "z"; "a"; "b"; "c" ] drained

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 1.0 v) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4 ]
    (List.map snd (Pqueue.drain q))

let test_pqueue_pop_until () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k k) [ 5.; 1.; 3.; 2.; 4. ];
  let early = Pqueue.pop_until q 3. in
  Alcotest.(check (list (float 0.01))) "popped <= 3" [ 1.; 2.; 3. ]
    (List.map fst early);
  check_int "rest remains" 2 (Pqueue.length q)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:300
    QCheck.(list (map Float.abs float))
    (fun keys ->
       let q = Pqueue.create () in
       List.iter (fun k -> Pqueue.push q k ()) keys;
       let out = List.map fst (Pqueue.drain q) in
       out = List.sort Float.compare keys)

(* Popped entries must not be retained by the heap array. The pushes and
   the pop happen in [@inline never] helpers so no stack slot of the test
   body itself keeps the popped value reachable; the queue stays live past
   the GC, or the whole heap would be garbage and the check vacuous. *)
let[@inline never] pqueue_push_two_pop_one q weak =
  Pqueue.push q 1.0 (ref 42);
  Pqueue.push q 2.0 (ref 43);
  match Pqueue.pop q with
  | Some (_, v) -> Weak.set weak 0 (Some v)
  | None -> Alcotest.fail "pop returned None"

let test_pqueue_pop_releases () =
  let q = Pqueue.create () in
  let weak = Weak.create 1 in
  pqueue_push_two_pop_one q weak;
  Gc.full_major ();
  Alcotest.(check bool) "popped value collected" false (Weak.check weak 0);
  check_int "queue still live" 1 (Pqueue.length q)

(* Growing the heap must not pin the value whose push triggered the
   growth: the old representation initialized the doubled array with a
   dummy entry built from it, leaving copies in every slot past [size].
   After draining and refilling the live prefix with fresh values, only
   those vacant-tail slots could still reference the watched value. *)
let[@inline never] pqueue_grow_with_watched q weak =
  for i = 1 to 16 do
    Pqueue.push q (float_of_int i) (ref i)
  done;
  let watched = ref 17 in
  Weak.set weak 0 (Some watched);
  Pqueue.push q 17.0 watched;  (* 17th push: capacity doubles *)
  check_int "drained all" 17 (List.length (Pqueue.drain q));
  for i = 1 to 17 do
    Pqueue.push q (float_of_int i) (ref (100 + i))
  done

let test_pqueue_grow_releases () =
  let q = Pqueue.create () in
  let weak = Weak.create 1 in
  pqueue_grow_with_watched q weak;
  Gc.full_major ();
  Alcotest.(check bool)
    "vacant capacity does not retain the growth-triggering value" false
    (Weak.check weak 0);
  check_int "refilled queue live" 17 (Pqueue.length q)

let prop_pqueue_stable_sort =
  QCheck.Test.make ~name:"pop order is a stable sort by key" ~count:300
    QCheck.(list (map (fun k -> Float.abs (float_of_int k)) small_int))
    (fun keys ->
       let q = Pqueue.create () in
       List.iteri (fun i k -> Pqueue.push q k (i, k)) keys;
       let expected =
         List.mapi (fun i k -> (i, k)) keys
         |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)
       in
       List.map snd (Pqueue.drain q) = expected)

let prop_pqueue_pop_until_boundary =
  QCheck.Test.make ~name:"pop_until boundary is inclusive" ~count:300
    QCheck.(pair (list (map Float.abs float)) (map Float.abs float))
    (fun (keys, limit) ->
       let q = Pqueue.create () in
       List.iter (fun k -> Pqueue.push q k k) keys;
       let popped = List.map fst (Pqueue.pop_until q limit) in
       let expected_popped =
         List.sort Float.compare (List.filter (fun k -> k <= limit) keys)
       in
       popped = expected_popped
       && Pqueue.length q = List.length keys - List.length expected_popped
       && (match Pqueue.min_key q with
           | Some k -> k > limit
           | None -> true))

let qsuite = List.map (fun t -> QCheck_alcotest.to_alcotest t)

let () =
  Alcotest.run "qs_net"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "split independence" `Quick test_rng_split_independent;
         Alcotest.test_case "split_n stable order" `Quick test_rng_split_n_stable;
         Alcotest.test_case "split_n sibling independence" `Quick
           test_rng_split_n_independent;
         Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
         Alcotest.test_case "int rejects" `Quick test_rng_int_rejects;
         Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
         Alcotest.test_case "weighted index" `Quick test_rng_weighted_index;
         Alcotest.test_case "weighted rejects" `Quick test_rng_weighted_rejects;
         Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
         Alcotest.test_case "sample without replacement" `Quick
           test_rng_sample_without_replacement;
         Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
         Alcotest.test_case "geometric" `Quick test_rng_geometric ]);
      ("ipv4",
       [ Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
         Alcotest.test_case "rejects malformed" `Quick test_ipv4_rejects;
         Alcotest.test_case "bits" `Quick test_ipv4_bits;
         Alcotest.test_case "arithmetic" `Quick test_ipv4_arith ]
       @ qsuite [ prop_ipv4_string_roundtrip ]);
      ("prefix",
       [ Alcotest.test_case "canonical form" `Quick test_prefix_canonical;
         Alcotest.test_case "membership" `Quick test_prefix_mem;
         Alcotest.test_case "subsumption" `Quick test_prefix_subsumes;
         Alcotest.test_case "split" `Quick test_prefix_split;
         Alcotest.test_case "nth" `Quick test_prefix_nth ]
       @ qsuite [ prop_prefix_split_partitions; prop_prefix_mem_first_last ]);
      ("prefix_trie",
       [ Alcotest.test_case "basics" `Quick test_trie_basics;
         Alcotest.test_case "remove" `Quick test_trie_remove;
         Alcotest.test_case "matches order" `Quick test_trie_matches_order;
         Alcotest.test_case "covered" `Quick test_trie_covered;
         Alcotest.test_case "fold order" `Quick test_trie_fold_order ]
       @ qsuite [ prop_trie_lpm_vs_brute_force; prop_trie_add_find ]);
      ("pqueue",
       [ Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
         Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
         Alcotest.test_case "pop until" `Quick test_pqueue_pop_until;
         Alcotest.test_case "pop releases value" `Quick test_pqueue_pop_releases;
         Alcotest.test_case "grow releases value" `Quick
           test_pqueue_grow_releases ]
       @ qsuite
           [ prop_pqueue_sorts; prop_pqueue_stable_sort;
             prop_pqueue_pop_until_boundary ]) ]
