(* Tests for qs_traffic: the event-driven network simulator, TCP, traces,
   and the onion circuit chain. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip = Ipv4.of_string

let mk_packet ?(payload = 0) ?(seq = 0) ?(ack = 0) src dst =
  { Netsim.src = ip src; dst = ip dst; sport = 1; dport = 2; seq; ack;
    payload; wnd = 65535; syn = false; fin = false }

(* ---- Netsim ---------------------------------------------------------- *)

let test_netsim_delivery_and_latency () =
  let net = Netsim.create ~rng:(Rng.of_int 1) () in
  let a = Netsim.add_node net and b = Netsim.add_node net in
  Netsim.link net a b ~latency:0.25 ();
  let arrived = ref [] in
  Netsim.set_handler net b (fun net _ -> arrived := Netsim.now net :: !arrived);
  Netsim.send net ~from:a ~to_:b (mk_packet "10.0.0.1" "10.0.0.2");
  Netsim.run net;
  Alcotest.(check (list (float 0.001))) "arrives after latency" [ 0.25 ] !arrived

let test_netsim_fifo_no_reorder () =
  (* heavy jitter must not reorder packets on one link *)
  let net = Netsim.create ~rng:(Rng.of_int 2) () in
  let a = Netsim.add_node net and b = Netsim.add_node net in
  Netsim.link net a b ~latency:0.01 ~jitter:0.5 ();
  let seen = ref [] in
  Netsim.set_handler net b (fun _ p -> seen := p.Netsim.seq :: !seen);
  for i = 1 to 50 do
    Netsim.send net ~from:a ~to_:b (mk_packet ~seq:i "10.0.0.1" "10.0.0.2")
  done;
  Netsim.run net;
  Alcotest.(check (list int)) "in order" (List.init 50 (fun i -> i + 1))
    (List.rev !seen)

let test_netsim_loss () =
  let net = Netsim.create ~rng:(Rng.of_int 3) () in
  let a = Netsim.add_node net and b = Netsim.add_node net in
  Netsim.link net a b ~latency:0.001 ~loss:0.5 ();
  let count = ref 0 in
  Netsim.set_handler net b (fun _ _ -> incr count);
  for _ = 1 to 2000 do
    Netsim.send net ~from:a ~to_:b (mk_packet "10.0.0.1" "10.0.0.2")
  done;
  Netsim.run net;
  check_bool "about half lost" true (!count > 800 && !count < 1200)

let test_netsim_tap_sees_everything () =
  (* taps observe before loss, like tcpdump at the sender *)
  let net = Netsim.create ~rng:(Rng.of_int 4) () in
  let a = Netsim.add_node net and b = Netsim.add_node net in
  Netsim.link net a b ~latency:0.001 ~loss:1.0 ();
  let tapped = ref 0 in
  Netsim.set_tap net ~from:a ~to_:b (fun _ _ -> incr tapped);
  for _ = 1 to 10 do
    Netsim.send net ~from:a ~to_:b (mk_packet "10.0.0.1" "10.0.0.2")
  done;
  Netsim.run net;
  check_int "tap sees all despite loss" 10 !tapped

let test_netsim_timers () =
  let net = Netsim.create ~rng:(Rng.of_int 5) () in
  let fired = ref [] in
  Netsim.schedule net 1.0 (fun net -> fired := Netsim.now net :: !fired);
  Netsim.schedule net 0.5 (fun net -> fired := Netsim.now net :: !fired);
  Netsim.run net;
  Alcotest.(check (list (float 0.001))) "timer order" [ 1.0; 0.5 ] !fired

let test_netsim_run_until () =
  let net = Netsim.create ~rng:(Rng.of_int 6) () in
  let fired = ref 0 in
  Netsim.schedule net 1.0 (fun _ -> incr fired);
  Netsim.schedule net 5.0 (fun _ -> incr fired);
  Netsim.run ~until:2.0 net;
  check_int "only early timer" 1 !fired

let test_netsim_rejects () =
  let net = Netsim.create ~rng:(Rng.of_int 7) () in
  let a = Netsim.add_node net in
  let b = Netsim.add_node net in
  check_bool "self link rejected" true
    (try Netsim.link net a a ~latency:0.1 (); false
     with Invalid_argument _ -> true);
  check_bool "send without link rejected" true
    (try Netsim.send net ~from:a ~to_:b (mk_packet "10.0.0.1" "10.0.0.2"); false
     with Invalid_argument _ -> true)

(* ---- Tcp ------------------------------------------------------------- *)

let tcp_pair ?(latency = 0.02) ?(jitter = 0.) ?(loss = 0.) ?(options = Tcp.default_options)
    seed =
  let net = Netsim.create ~rng:(Rng.of_int seed) () in
  let a = Netsim.add_node net and b = Netsim.add_node net in
  Netsim.link net a b ~latency ~jitter ~loss ();
  let ea = Tcp.attach net a (ip "10.0.0.1") in
  let eb = Tcp.attach net b (ip "10.0.0.2") in
  let ca, cb = Tcp.connect ~options ~a:ea ~b:eb () in
  (net, ca, cb)

let test_tcp_delivers_exact_bytes () =
  let net, ca, cb = tcp_pair 1 in
  Tcp.send ca 1_000_000;
  Netsim.run ~until:60. net;
  check_int "all bytes delivered" 1_000_000 (Tcp.bytes_delivered cb);
  check_int "all bytes acked" 1_000_000 (Tcp.bytes_acked ca);
  check_int "backlog drained" 0 (Tcp.bytes_queued ca)

let test_tcp_bidirectional () =
  let net, ca, cb = tcp_pair 2 in
  Tcp.send ca 50_000;
  Tcp.send cb 70_000;
  Netsim.run ~until:60. net;
  check_int "a->b" 50_000 (Tcp.bytes_delivered cb);
  check_int "b->a" 70_000 (Tcp.bytes_delivered ca)

let test_tcp_survives_loss () =
  let net, ca, cb = tcp_pair ~loss:0.02 ~jitter:0.005 3 in
  Tcp.send ca 500_000;
  Netsim.run ~until:300. net;
  check_int "loss recovered" 500_000 (Tcp.bytes_delivered cb);
  let rto, frtx = Tcp.retransmit_stats ca in
  check_bool "retransmissions happened" true (rto + frtx > 0)

let test_tcp_acks_cumulative_monotone () =
  let net = Netsim.create ~rng:(Rng.of_int 4) () in
  let a = Netsim.add_node net and b = Netsim.add_node net in
  Netsim.link net a b ~latency:0.02 ~loss:0.01 ();
  let ea = Tcp.attach net a (ip "10.0.0.1") in
  let eb = Tcp.attach net b (ip "10.0.0.2") in
  let ca, cb = Tcp.connect ~a:ea ~b:eb () in
  (* observe the ack stream b -> a *)
  let last_ack = ref 0 and monotone = ref true in
  Netsim.set_tap net ~from:b ~to_:a (fun _ p ->
      if p.Netsim.ack < !last_ack then monotone := false;
      last_ack := max !last_ack p.Netsim.ack);
  Tcp.send ca 300_000;
  Netsim.run ~until:120. net;
  check_bool "cumulative acks never regress" true !monotone;
  check_int "final ack covers everything" 300_000 !last_ack;
  check_int "delivered" 300_000 (Tcp.bytes_delivered cb)

let test_tcp_respects_rwnd () =
  let options = { Tcp.default_options with Tcp.rwnd = 20_000 } in
  let net = Netsim.create ~rng:(Rng.of_int 5) () in
  let a = Netsim.add_node net and b = Netsim.add_node net in
  Netsim.link net a b ~latency:0.05 ();
  let ea = Tcp.attach net a (ip "10.0.0.1") in
  let eb = Tcp.attach net b (ip "10.0.0.2") in
  let ca, cb = Tcp.connect ~options ~a:ea ~b:eb () in
  let in_flight_max = ref 0 in
  Netsim.set_tap net ~from:a ~to_:b (fun _ p ->
      let flight = p.Netsim.seq + p.Netsim.payload - Tcp.bytes_acked ca in
      if flight > !in_flight_max then in_flight_max := flight);
  Tcp.send ca 200_000;
  Netsim.run ~until:120. net;
  check_int "delivered" 200_000 (Tcp.bytes_delivered cb);
  check_bool "window respected" true (!in_flight_max <= 20_000)

let test_tcp_on_receive_counts () =
  let net, ca, cb = tcp_pair 6 in
  let received = ref 0 in
  Tcp.set_on_receive cb (fun n -> received := !received + n);
  Tcp.send ca 123_456;
  Netsim.run ~until:60. net;
  check_int "callback sums to total" 123_456 !received

let test_tcp_flow_control_stalls () =
  (* a receiver that never consumes must stall the sender near rwnd *)
  let options = { Tcp.default_options with Tcp.rwnd = 30_000 } in
  let net, ca, cb = tcp_pair ~options 7 in
  Tcp.set_manual_consume cb true;
  Tcp.send ca 500_000;
  Netsim.run ~until:30. net;
  check_bool "sender stalled around rwnd" true
    (Tcp.bytes_delivered cb <= 30_000 + 1460);
  check_int "backlog retained" (Tcp.bytes_delivered cb) (Tcp.receive_backlog cb);
  (* consuming reopens the window and the transfer finishes *)
  let rec drain net =
    let n = Tcp.receive_backlog cb in
    if n > 0 then Tcp.consume cb n;
    if Tcp.bytes_delivered cb < 500_000 then Netsim.schedule net 0.05 drain
  in
  drain net;
  Netsim.run ~until:120. net;
  check_int "completes after consume" 500_000 (Tcp.bytes_delivered cb)

let test_tcp_consume_rejects_negative () =
  let _, _, cb = tcp_pair 8 in
  check_bool "negative consume rejected" true
    (try Tcp.consume cb (-1); false with Invalid_argument _ -> true)

(* ---- Trace ----------------------------------------------------------- *)

let test_trace_series () =
  let t = Trace.create () in
  let p payload ack = { (mk_packet "10.0.0.1" "10.0.0.2") with Netsim.payload; ack } in
  Trace.tap t 0.1 (p 1000 0);
  Trace.tap t 0.9 (p 500 0);
  Trace.tap t 1.5 (p 2000 0);
  let sent = Trace.bytes_sent_series t ~bin:1.0 ~duration:2.0 in
  Alcotest.(check (array (float 0.01))) "sent bins" [| 1500.; 2000. |] sent;
  check_int "total payload" 3500 (Trace.total_payload t);
  (* cumulative acks: only increments count *)
  let t2 = Trace.create () in
  Trace.tap t2 0.2 (p 0 1000);
  Trace.tap t2 0.4 (p 0 800);   (* reordered ack: no new bytes *)
  Trace.tap t2 1.2 (p 0 4000);
  let acked = Trace.bytes_acked_series t2 ~bin:1.0 ~duration:2.0 in
  Alcotest.(check (array (float 0.01))) "acked bins" [| 1000.; 3000. |] acked;
  check_int "max ack" 4000 (Trace.max_ack t2);
  let cum = Trace.cumulative acked in
  Alcotest.(check (array (float 0.01))) "cumulative" [| 1000.; 4000. |] cum

let test_trace_rejects () =
  let t = Trace.create () in
  check_bool "bad bin rejected" true
    (try ignore (Trace.bytes_sent_series t ~bin:0. ~duration:1.); false
     with Invalid_argument _ -> true)

(* ---- Onion ----------------------------------------------------------- *)

let mb = 1024 * 1024

let test_onion_download_completes () =
  let r = Onion.download ~rng:(Rng.of_int 1) ~size:(2 * mb) () in
  check_bool "completed" true r.Onion.completed;
  check_bool "client received at least the payload" true
    (r.Onion.client_received >= 2 * mb);
  check_bool "finished in sane time" true
    (r.Onion.finish_time > 0.5 && r.Onion.finish_time < 120.)

let test_onion_four_segments_consistent () =
  let r = Onion.download ~rng:(Rng.of_int 2) ~size:(2 * mb) () in
  let data_down = Trace.total_payload r.Onion.server_to_exit in
  let acked_up = Trace.max_ack r.Onion.exit_to_server in
  let data_client = Trace.total_payload r.Onion.guard_to_client in
  let acked_client = Trace.max_ack r.Onion.client_to_guard in
  (* server-side bytes (raw) vs client-side bytes (cell-packed): within
     ~6% of each other, and acks track data on each side *)
  check_bool "server data ~ acked" true
    (Float.abs (float_of_int (data_down - acked_up)) /. float_of_int acked_up < 0.05);
  check_bool "client data ~ acked" true
    (Float.abs (float_of_int (data_client - acked_client))
     /. float_of_int acked_client < 0.05);
  let ratio = float_of_int data_client /. float_of_int data_down in
  check_bool "cell overhead ~ 514/498" true (ratio > 1.0 && ratio < 1.1)

let test_onion_upload () =
  let r = Onion.upload ~rng:(Rng.of_int 3) ~size:(1 * mb) () in
  check_bool "completed" true r.Onion.completed;
  (* in an upload the client->guard direction carries the data *)
  check_bool "upstream carries data" true
    (Trace.total_payload r.Onion.client_to_guard
     > Trace.total_payload r.Onion.guard_to_client)

let test_onion_rejects () =
  check_bool "size 0 rejected" true
    (try ignore (Onion.download ~rng:(Rng.of_int 4) ~size:0 ()); false
     with Invalid_argument _ -> true)

let test_onion_bursty_download () =
  let r =
    Onion.download ~rng:(Rng.of_int 9) ~burst:(200 * 1024, 1.0)
      ~size:(2 * mb) ()
  in
  check_bool "bursty download completes" true r.Onion.completed;
  (* the burst gaps must show in the trace: some near-idle 100ms bins *)
  let series =
    Trace.bytes_sent_series r.Onion.server_to_exit ~bin:0.1
      ~duration:r.Onion.finish_time
  in
  let idle = Array.fold_left (fun acc b -> if b < 1460. then acc + 1 else acc) 0 series in
  check_bool "transfer has idle gaps" true (idle > 2)

let test_onion_start_delay () =
  let r = Onion.download ~rng:(Rng.of_int 10) ~start_delay:2.0 ~size:mb () in
  check_bool "completes" true r.Onion.completed;
  (match Trace.observations r.Onion.client_to_guard with
   | first :: _ -> check_bool "nothing before the delay" true (first.Trace.time >= 2.0)
   | [] -> Alcotest.fail "no observations")

let test_onion_deterministic () =
  let run () =
    let r = Onion.download ~rng:(Rng.of_int 5) ~size:mb () in
    (r.Onion.finish_time, r.Onion.client_received)
  in
  check_bool "same seed same transfer" true (run () = run ())

let prop_tcp_byte_conservation =
  QCheck.Test.make ~name:"tcp conserves bytes under loss" ~count:10
    QCheck.(pair (int_bound 1000) (int_range 1 400))
    (fun (seed, kb) ->
       let size = kb * 1024 in
       let net, ca, cb = tcp_pair ~loss:0.01 ~jitter:0.002 (seed + 100) in
       Tcp.send ca size;
       Netsim.run ~until:600. net;
       Tcp.bytes_delivered cb = size && Tcp.bytes_acked ca = size)

let qsuite = List.map (fun t -> QCheck_alcotest.to_alcotest t)

let () =
  Alcotest.run "qs_traffic"
    [ ("netsim",
       [ Alcotest.test_case "delivery and latency" `Quick test_netsim_delivery_and_latency;
         Alcotest.test_case "fifo no reorder" `Quick test_netsim_fifo_no_reorder;
         Alcotest.test_case "loss" `Quick test_netsim_loss;
         Alcotest.test_case "tap before loss" `Quick test_netsim_tap_sees_everything;
         Alcotest.test_case "timers" `Quick test_netsim_timers;
         Alcotest.test_case "run until" `Quick test_netsim_run_until;
         Alcotest.test_case "rejects" `Quick test_netsim_rejects ]);
      ("tcp",
       [ Alcotest.test_case "delivers exact bytes" `Quick test_tcp_delivers_exact_bytes;
         Alcotest.test_case "bidirectional" `Quick test_tcp_bidirectional;
         Alcotest.test_case "survives loss" `Quick test_tcp_survives_loss;
         Alcotest.test_case "acks cumulative monotone" `Quick
           test_tcp_acks_cumulative_monotone;
         Alcotest.test_case "respects rwnd" `Quick test_tcp_respects_rwnd;
         Alcotest.test_case "on_receive counts" `Quick test_tcp_on_receive_counts;
         Alcotest.test_case "flow control stalls and resumes" `Quick
           test_tcp_flow_control_stalls;
         Alcotest.test_case "consume validation" `Quick
           test_tcp_consume_rejects_negative ]
       @ qsuite [ prop_tcp_byte_conservation ]);
      ("trace",
       [ Alcotest.test_case "series" `Quick test_trace_series;
         Alcotest.test_case "rejects" `Quick test_trace_rejects ]);
      ("onion",
       [ Alcotest.test_case "download completes" `Quick test_onion_download_completes;
         Alcotest.test_case "four segments consistent" `Quick
           test_onion_four_segments_consistent;
         Alcotest.test_case "upload" `Quick test_onion_upload;
         Alcotest.test_case "rejects size 0" `Quick test_onion_rejects;
         Alcotest.test_case "bursty download" `Quick test_onion_bursty_download;
         Alcotest.test_case "start delay" `Quick test_onion_start_delay;
         Alcotest.test_case "deterministic" `Quick test_onion_deterministic ]) ]
