(* Tests for qs_core: scenario construction, the measurement pipeline and
   every experiment module. These use the Small scale and short dynamics so
   the suite stays fast. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let scenario = lazy (Scenario.build ~seed:5 Scenario.Small)

let tiny_dynamics =
  { Dynamics.short_config with
    Dynamics.duration = 12. *. 3600.;
    base_churn_rate = 0.3 }

let measurement = lazy (Measurement.run ~dynamics:tiny_dynamics (Lazy.force scenario))

(* ---- Scenario --------------------------------------------------------- *)

let test_scenario_deterministic () =
  let a = Scenario.build ~seed:11 Scenario.Small in
  let b = Scenario.build ~seed:11 Scenario.Small in
  Alcotest.(check string) "same consensus"
    (Consensus.to_string a.Scenario.consensus)
    (Consensus.to_string b.Scenario.consensus);
  Alcotest.(check string) "same topology"
    (As_graph.to_caida_string a.Scenario.graph)
    (As_graph.to_caida_string b.Scenario.graph)

let test_scenario_seed_matters () =
  let a = Scenario.build ~seed:11 Scenario.Small in
  let b = Scenario.build ~seed:12 Scenario.Small in
  check_bool "different seeds differ" true
    (Consensus.to_string a.Scenario.consensus
     <> Consensus.to_string b.Scenario.consensus)

let test_scenario_guard_announcement () =
  let s = Lazy.force scenario in
  List.iter
    (fun g ->
       match Scenario.guard_announcement s g with
       | Some ann ->
           check_bool "prefix covers the relay" true
             (Prefix.mem g.Relay.ip ann.Announcement.prefix)
       | None -> Alcotest.fail "guard without announcement")
    (Consensus.guards s.Scenario.consensus)

let test_scenario_client_as () =
  let s = Lazy.force scenario in
  let rng = Rng.of_int 1 in
  for _ = 1 to 20 do
    let a = Scenario.random_client_as ~rng s in
    check_bool "client AS hosts no relay" true
      (Consensus.relays_in s.Scenario.consensus a = []);
    check_bool "client AS is a stub" true
      ((As_graph.info s.Scenario.graph a).As_graph.tier = As_graph.Stub)
  done

let test_scenario_rng_for_stable () =
  let s = Lazy.force scenario in
  let a = Rng.int64 (Scenario.rng_for s "x") in
  let b = Rng.int64 (Scenario.rng_for s "x") in
  let c = Rng.int64 (Scenario.rng_for s "y") in
  check_bool "same name same stream" true (Int64.equal a b);
  check_bool "different name different stream" true (not (Int64.equal a c))

(* Regression (failed before the Digest-based derivation): [rng_for] used
   to seed its stream with [seed + 0x9E37 * Hashtbl.hash name], and
   [Hashtbl.hash]'s bounded range makes cross-(seed, name) collisions
   constructible — with ha = hash "alpha" and hb = hash "bravo", the pair
   (seed, "alpha") collided with (seed + 0x9E37 * (ha - hb), "bravo"),
   feeding two supposedly independent experiments the same randomness. *)
let test_scenario_rng_for_no_hash_collision () =
  let s1 = Lazy.force scenario in
  let ha = Hashtbl.hash "alpha" and hb = Hashtbl.hash "bravo" in
  let seed2 = s1.Scenario.seed + (0x9E37 * (ha - hb)) in
  let s2 = Scenario.build ~seed:seed2 s1.Scenario.size in
  let a = Rng.int64 (Scenario.rng_for s1 "alpha") in
  let b = Rng.int64 (Scenario.rng_for s2 "bravo") in
  check_bool "constructed (seed, name) collision gets distinct streams" true
    (not (Int64.equal a b))

(* The stream-name audit: [Scenario.stream_names] is the registry of
   every name the codebase passes to [rng_for]; it must be sorted and
   duplicate-free, and across random seeds every registered name must
   derive a pairwise-distinct stream seed (no two experiments share
   randomness). [rng_for] reads only the seed, so the property rebinds
   the seed on one built scenario instead of rebuilding per case. *)
let test_scenario_stream_names_registry () =
  let names = Scenario.stream_names in
  check_bool "sorted" true (List.sort String.compare names = names);
  check_int "duplicate-free" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let prop_stream_names_pairwise_distinct =
  QCheck.Test.make ~name:"rng_for pairwise distinct over stream_names"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       let s = { (Lazy.force scenario) with Scenario.seed } in
       let derived =
         List.map (fun n -> Rng.int64 (Scenario.rng_for s n))
           Scenario.stream_names
       in
       List.length (List.sort_uniq Int64.compare derived)
       = List.length Scenario.stream_names)

(* ---- Measurement ------------------------------------------------------ *)

let test_measurement_cells_consistent () =
  let m = Lazy.force measurement in
  check_bool "has cells" true (m.Measurement.cells <> []);
  List.iter
    (fun (c : Measurement.cell) ->
       check_bool "updates >= changes" true
         (c.Measurement.updates >= c.Measurement.path_changes);
       List.iter
         (fun (_, d) ->
            check_bool "residency within duration" true
              (d >= 0. && d <= m.Measurement.duration +. 1e-6))
         c.Measurement.residency)
    m.Measurement.cells

let test_measurement_baseline_residency () =
  (* a cell with a baseline and no updates must have full-duration
     residency on its baseline ASes *)
  let m = Lazy.force measurement in
  let quiet =
    List.find_opt
      (fun (c : Measurement.cell) ->
         c.Measurement.baseline <> None && c.Measurement.updates = 0)
      m.Measurement.cells
  in
  match quiet with
  | None -> ()  (* churny run; fine *)
  | Some c ->
      let base = Option.value ~default:Asn.Set.empty c.Measurement.baseline in
      Asn.Set.iter
        (fun a ->
           match List.assoc_opt a c.Measurement.residency with
           | Some d ->
               check_bool "full residency" true
                 (Float.abs (d -. m.Measurement.duration) < 1.0)
           | None -> Alcotest.fail "baseline AS missing residency")
        base

let test_measurement_extra_ases_threshold () =
  let m = Lazy.force measurement in
  List.iter
    (fun (c : Measurement.cell) ->
       let strict = Measurement.extra_ases ~threshold:3600. c in
       let loose = Measurement.extra_ases ~threshold:60. c in
       check_bool "higher threshold, fewer extras" true
         (Asn.Set.subset strict loose))
    m.Measurement.cells

let test_measurement_visibility_bounds () =
  let m = Lazy.force measurement in
  let s = Lazy.force scenario in
  Tor_prefix.entries s.Scenario.tor_prefixes
  |> List.iter (fun e ->
      let v = Measurement.visibility_fraction m e.Tor_prefix.prefix in
      check_bool "visibility in [0,1]" true (v >= 0. && v <= 1.))

let test_measurement_extra_updates_merged () =
  let s = Lazy.force scenario in
  let session =
    match Scenario.sessions s with
    | sess :: _ -> sess.Collector.id
    | [] -> Alcotest.fail "no sessions"
  in
  let p = Prefix.of_string "203.0.113.0/24" in
  let extra =
    [ { Update.time = 1000.;
        session;
        kind = Update.Announce (Route.make p [ session.Update.peer; Asn.of_int 65000 ]) } ]
  in
  let seen = ref false in
  let m =
    Measurement.run ~dynamics:tiny_dynamics ~extra_updates:extra
      ~observe:(fun u -> if Prefix.equal (Update.prefix u) p then seen := true)
      s
  in
  check_bool "injected update observed" true !seen;
  check_bool "injected prefix has a cell" true
    (List.exists
       (fun (c : Measurement.cell) ->
          Prefix.equal c.Measurement.key.Measurement.prefix p)
       m.Measurement.cells)

(* ---- Experiments ------------------------------------------------------ *)

let test_dataset () =
  let m = Lazy.force measurement in
  let d = Dataset.compute m in
  let p = Consensus.small_params in
  check_int "relays" p.Consensus.n_relays d.Dataset.n_relays;
  check_int "guards" p.Consensus.n_guards d.Dataset.n_guards;
  check_int "exits" p.Consensus.n_exits d.Dataset.n_exits;
  check_bool "visibility sane" true
    (d.Dataset.mean_visibility > 0. && d.Dataset.mean_visibility <= 1.);
  check_bool "prefixes counted" true (d.Dataset.n_tor_prefixes > 0)

let test_concentration () =
  let s = Lazy.force scenario in
  let c = Concentration.compute s in
  check_bool "curve ends at 100%" true
    (match List.rev c.Concentration.curve with
     | (_, pct) :: _ -> Float.abs (pct -. 100.) < 1e-6
     | [] -> false);
  check_bool "curve monotone" true
    (let rec mono = function
       | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && mono rest
       | _ -> true
     in
     mono c.Concentration.curve);
  check_bool "top5 between share(1) and 1" true
    (c.Concentration.top5_share >= Concentration.share_at c 1
     && c.Concentration.top5_share <= 1.);
  check_bool "hosting ASes dominate" true (c.Concentration.top5_share > 0.2)

let test_path_changes () =
  let m = Lazy.force measurement in
  let pc = Path_changes.compute m in
  check_bool "has ratios" true (pc.Path_changes.ratios <> []);
  check_bool "fractions in range" true
    (pc.Path_changes.frac_above_one >= 0. && pc.Path_changes.frac_above_one <= 1.
     && pc.Path_changes.frac_tor_beating_median_somewhere <= 1.);
  check_bool "tor prefixes churn more than median" true
    (pc.Path_changes.frac_above_one > 0.2)

let test_as_exposure () =
  let m = Lazy.force measurement in
  let e5 = As_exposure.compute m in
  let e0 = As_exposure.compute ~threshold:0. m in
  check_bool "thresholding reduces exposure" true
    (e0.As_exposure.frac_at_least_2 >= e5.As_exposure.frac_at_least_2);
  check_bool "max >= 0" true (e5.As_exposure.max_extras >= 0);
  List.iter
    (fun e -> check_bool "non-negative" true (e >= 0))
    e5.As_exposure.extras

let test_compromise () =
  let rng = Rng.of_int 9 in
  let c = Compromise.compute ~rng ~trials:3000 () in
  check_bool "monte carlo close to analytic" true (c.Compromise.max_abs_error < 0.05);
  List.iter
    (fun r ->
       check_bool "l=3 amplifies" true
         (r.Compromise.analytic_l3 >= r.Compromise.analytic_l1))
    c.Compromise.rows

let test_asymmetric_run () =
  let rng = Rng.of_int 21 in
  let r = Asymmetric.run ~rng ~size:(3 * 1024 * 1024) () in
  check_bool "completed" true r.Asymmetric.completed;
  check_bool "asymmetric correlation strong" true (r.Asymmetric.asymmetric_r > 0.5);
  check_bool "ack-ack correlation strong" true (r.Asymmetric.ack_ack_r > 0.5);
  check_int "four curves" 4 (List.length r.Asymmetric.curves)

let test_asymmetric_matching () =
  let rng = Rng.of_int 22 in
  let m = Asymmetric.deanonymize ~rng ~n_flows:4 ~size:(2 * 1024 * 1024) () in
  check_bool "beats chance" true
    (m.Asymmetric.accuracy > 1.5 /. float_of_int m.Asymmetric.n_flows)

let test_hijack_experiment () =
  let s = Lazy.force scenario in
  let rng = Rng.of_int 31 in
  let h = Deanonymization.hijack ~rng ~n_trials:8 ~n_clients:20 s in
  check_bool "trials ran" true (h.Deanonymization.trials <> []);
  check_bool "capture fraction sane" true
    (h.Deanonymization.mean_capture > 0. && h.Deanonymization.mean_capture < 1.);
  List.iter
    (fun t ->
       check_bool "set bounded by clients" true
         (t.Deanonymization.anonymity_set_size <= t.Deanonymization.n_clients))
    h.Deanonymization.trials

let test_interception_experiment () =
  let s = Lazy.force scenario in
  let rng = Rng.of_int 32 in
  let i = Deanonymization.interception ~rng ~n_trials:8 ~timing_accuracy:1.0 s in
  check_bool "rates in range" true
    (i.Deanonymization.feasibility_rate >= 0.
     && i.Deanonymization.feasibility_rate <= 1.
     && i.Deanonymization.deanonymization_rate
        <= i.Deanonymization.i_target_capture_rate +. 1e-9)

let test_countermeasure_selection () =
  let s = Lazy.force scenario in
  let rng = Rng.of_int 33 in
  let evals = Countermeasures.selection ~rng ~n_trials:12 s in
  check_int "three policies" 3 (List.length evals);
  let find p =
    List.find (fun e -> e.Countermeasures.policy = p) evals
  in
  let default = find Countermeasures.Default in
  let aware = find Countermeasures.As_aware in
  check_bool "AS-aware not worse than default" true
    (aware.Countermeasures.common_as_rate
     <= default.Countermeasures.common_as_rate +. 1e-9);
  check_bool "model compromise ordered too" true
    (aware.Countermeasures.model_compromise
     <= default.Countermeasures.model_compromise +. 1e-9)

let test_countermeasure_monitoring () =
  let s = Lazy.force scenario in
  let rng = Rng.of_int 34 in
  let m = Countermeasures.monitoring ~rng ~n_attacks:4 s in
  check_int "attacks injected" 4 m.Countermeasures.n_attacks;
  check_bool "some detection" true (m.Countermeasures.recall > 0.);
  check_bool "precision in range" true
    (m.Countermeasures.precision >= 0. && m.Countermeasures.precision <= 1.)

(* ---- Extensions -------------------------------------------------------- *)

let test_bgp_security_sweep () =
  let s = Lazy.force scenario in
  let rng = Rng.of_int 41 in
  let x = Bgp_security.sweep ~rng ~n_trials:6 s in
  check_int "five points" 5 (List.length x.Bgp_security.points);
  let first = List.hd x.Bgp_security.points in
  let last = List.nth x.Bgp_security.points 4 in
  check_bool "deployment ascending" true
    (first.Bgp_security.deployment < last.Bgp_security.deployment);
  check_bool "full ROV kills origin hijack" true
    (last.Bgp_security.hijack_capture < 0.1
     && last.Bgp_security.hijack_capture < first.Bgp_security.hijack_capture);
  check_bool "interception unaffected by ROV" true
    (Float.abs
       (last.Bgp_security.interception_capture
        -. first.Bgp_security.interception_capture)
     < 1e-9);
  List.iter
    (fun p ->
       check_bool "fractions in range" true
         (p.Bgp_security.hijack_capture >= 0. && p.Bgp_security.hijack_capture <= 1.
          && p.Bgp_security.subprefix_capture <= 1.
          && p.Bgp_security.interception_feasible <= 1.))
    x.Bgp_security.points

let test_route_asymmetry () =
  let s = Lazy.force scenario in
  let rng = Rng.of_int 42 in
  let x = Route_asymmetry.compute ~rng ~n_pairs:25 s in
  check_bool "pairs computed" true (x.Route_asymmetry.pairs <> []);
  check_bool "union at least forward" true
    (x.Route_asymmetry.mean_union >= x.Route_asymmetry.mean_forward -. 1e-9);
  check_bool "compromise union >= forward" true
    (x.Route_asymmetry.compromise_union
     >= x.Route_asymmetry.compromise_forward -. 1e-9);
  List.iter
    (fun p ->
       check_bool "forward contains client and guard-origin walk" true
         (Asn.Set.mem p.Route_asymmetry.client p.Route_asymmetry.forward))
    x.Route_asymmetry.pairs

let test_long_term_designs () =
  let s = Lazy.force scenario in
  let rng = Rng.of_int 43 in
  let outs = Long_term.compare_designs ~rng ~horizon_days:60 ~f:0.08 ~n_draws:4 s in
  check_int "four designs" 4 (List.length outs);
  List.iter
    (fun o ->
       check_bool "fraction in range" true
         (o.Long_term.compromised_fraction >= 0.
          && o.Long_term.compromised_fraction <= 1.);
       check_bool "median within horizon" true
         (match o.Long_term.median_day with
          | Some d -> d >= 1 && d <= 60
          | None -> true);
       check_int "days list consistent"
         (List.length o.Long_term.days_to_compromise)
         (int_of_float
            (Float.round
               (o.Long_term.compromised_fraction *. float_of_int o.Long_term.clients))))
    outs

let test_long_term_monotone_in_f () =
  let s = Lazy.force scenario in
  let frac f seed =
    let rng = Rng.of_int seed in
    let outs = Long_term.compare_designs ~rng ~horizon_days:60 ~f ~n_draws:4 s in
    List.fold_left (fun acc o -> acc +. o.Long_term.compromised_fraction) 0. outs
  in
  check_bool "more malicious ASes, more compromise" true
    (frac 0.15 44 >= frac 0.02 44)

let test_convergence_leak () =
  let m = Lazy.force measurement in
  let x = Convergence_leak.compute m in
  check_bool "counts non-negative" true
    (List.for_all (fun c -> c >= 0) x.Convergence_leak.transient_counts);
  check_bool "fraction in range" true
    (x.Convergence_leak.frac_cases_with_transient >= 0.
     && x.Convergence_leak.frac_cases_with_transient <= 1.);
  (* a zero analysis threshold means nothing is transient *)
  let strict = Convergence_leak.compute ~analysis_threshold:0. m in
  check_int "no transients at threshold 0" 0
    strict.Convergence_leak.total_transient_ases

let test_guard_inference () =
  let s = Lazy.force scenario in
  let rng = Rng.of_int 45 in
  let consensus = s.Scenario.consensus in
  let true_guard = Path_selection.pick_weighted ~rng (Consensus.guards consensus) in
  let strong =
    { Guard_inference.default_config with
      Guard_inference.noise_sigma = 0.0001; probes = 1; n_candidates = 200 }
  in
  let r = Guard_inference.infer ~rng ~config:strong consensus ~true_guard in
  check_bool "noise-free inference is exact" true r.Guard_inference.correct;
  check_bool "true guard probed" true r.Guard_inference.true_guard_probed;
  (* more probes help *)
  let rate probes =
    let rng = Rng.of_int 46 in
    let config = { Guard_inference.default_config with Guard_inference.probes } in
    Guard_inference.success_rate ~rng ~config ~trials:120 consensus
  in
  check_bool "probing more beats probing once" true (rate 12 >= rate 1)

(* ---- Parallel determinism --------------------------------------------- *)

(* The executor's contract: every experiment that takes [?exec] must print
   byte-identical output at jobs=1 and jobs=N. Rendering through the real
   [print] functions compares everything the user can see — row order,
   tie-breaks, float formatting — not just a summary statistic. *)

let render print v =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  print ppf v;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let prop_compromise_jobs_identical =
  QCheck.Test.make ~name:"M1 byte-identical at jobs=1 and jobs=4" ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
       let table jobs =
         Pool.with_pool ~jobs (fun exec ->
             render Compromise.print
               (Compromise.compute ~rng:(Rng.of_int seed) ~exec ~trials:400
                  ~universe:600 ()))
       in
       String.equal (table 1) (table 4))

let prop_long_term_jobs_identical =
  QCheck.Test.make ~name:"M2 byte-identical at jobs=1 and jobs=4" ~count:3
    QCheck.(int_bound 10_000)
    (fun seed ->
       let s = Lazy.force scenario in
       let table jobs =
         Pool.with_pool ~jobs (fun exec ->
             render Long_term.print
               (Long_term.compare_designs ~rng:(Rng.of_int seed)
                  ~horizon_days:30 ~n_draws:2 ~exec s))
       in
       String.equal (table 1) (table 4))

let prop_as_exposure_jobs_identical =
  QCheck.Test.make ~name:"F3R byte-identical at jobs=1 and jobs=4" ~count:5
    QCheck.(int_range 1 30)
    (fun minutes ->
       let m = Lazy.force measurement in
       let threshold = float_of_int (60 * minutes) in
       let table jobs =
         Pool.with_pool ~jobs (fun exec ->
             render As_exposure.print (As_exposure.compute ~threshold ~exec m))
       in
       String.equal (table 1) (table 4))

let test_path_changes_jobs_identical () =
  let m = Lazy.force measurement in
  let table jobs =
    Pool.with_pool ~jobs (fun exec ->
        render Path_changes.print (Path_changes.compute ~exec m))
  in
  Alcotest.(check string) "F3L byte-identical at jobs=1 and jobs=4"
    (table 1) (table 4);
  Alcotest.(check string) "and at jobs=2" (table 1) (table 2)

let test_fingerprint_jobs_identical () =
  let s = Lazy.force scenario in
  let fp jobs =
    Pool.with_pool ~jobs (fun exec -> Scenario.fingerprint ~exec s)
  in
  Alcotest.(check string) "fingerprint identical at jobs=1 and jobs=4"
    (fp 1) (fp 4)

(* Regression (failed before the identity section was added): the
   fingerprint digested only graph/consensus/addressing/sessions, so two
   sweep cells over the same built scenario — different churn model,
   adversary fraction, horizon — fingerprinted identically and their
   results directories were indistinguishable. The params section must
   separate them, canonically (binding order must not matter, and the
   length-prefixed rendering must keep adversarial key/value spellings
   from aliasing). *)
let test_fingerprint_params_identity () =
  let s = Lazy.force scenario in
  let fp params = Scenario.fingerprint ~params s in
  check_bool "distinct params, distinct fingerprints" true
    (fp [ ("churn", "heavy") ] <> fp [ ("churn", "calm") ]);
  check_bool "params change the no-params fingerprint" true
    (fp [ ("churn", "heavy") ] <> Scenario.fingerprint s);
  Alcotest.(check string) "binding order canonicalized"
    (fp [ ("adversary", "0.05"); ("churn", "heavy") ])
    (fp [ ("churn", "heavy"); ("adversary", "0.05") ]);
  Alcotest.(check string) "absent params = empty params"
    (Scenario.fingerprint s) (fp []);
  check_bool "length-prefixed rendering cannot alias" true
    (fp [ ("a", "1=2:x") ] <> fp [ ("a=1", "2:x") ])

let qsuite = List.map (fun t -> QCheck_alcotest.to_alcotest t)

let () =
  Alcotest.run "qs_core"
    [ ("scenario",
       [ Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
         Alcotest.test_case "seed matters" `Quick test_scenario_seed_matters;
         Alcotest.test_case "guard announcements" `Quick
           test_scenario_guard_announcement;
         Alcotest.test_case "client AS sampling" `Quick test_scenario_client_as;
         Alcotest.test_case "rng_for stability" `Quick test_scenario_rng_for_stable;
         Alcotest.test_case "rng_for collision regression" `Quick
           test_scenario_rng_for_no_hash_collision;
         Alcotest.test_case "stream-name registry" `Quick
           test_scenario_stream_names_registry ]
       @ qsuite [ prop_stream_names_pairwise_distinct ]);
      ("measurement",
       [ Alcotest.test_case "cells consistent" `Quick test_measurement_cells_consistent;
         Alcotest.test_case "baseline residency" `Quick
           test_measurement_baseline_residency;
         Alcotest.test_case "extra-AS threshold monotone" `Quick
           test_measurement_extra_ases_threshold;
         Alcotest.test_case "visibility bounds" `Quick
           test_measurement_visibility_bounds;
         Alcotest.test_case "extra updates merged" `Quick
           test_measurement_extra_updates_merged ]);
      ("experiments",
       [ Alcotest.test_case "T1 dataset" `Quick test_dataset;
         Alcotest.test_case "F2L concentration" `Quick test_concentration;
         Alcotest.test_case "F3L path changes" `Quick test_path_changes;
         Alcotest.test_case "F3R exposure" `Quick test_as_exposure;
         Alcotest.test_case "M1 compromise" `Quick test_compromise;
         Alcotest.test_case "F2R run" `Quick test_asymmetric_run;
         Alcotest.test_case "F2R matching" `Quick test_asymmetric_matching;
         Alcotest.test_case "A1 hijack" `Quick test_hijack_experiment;
         Alcotest.test_case "A2 interception" `Quick test_interception_experiment;
         Alcotest.test_case "C1a selection" `Quick test_countermeasure_selection;
         Alcotest.test_case "C1c monitoring" `Quick test_countermeasure_monitoring ]);
      ("extensions",
       [ Alcotest.test_case "X1 ROV sweep" `Quick test_bgp_security_sweep;
         Alcotest.test_case "X2 route asymmetry" `Quick test_route_asymmetry;
         Alcotest.test_case "M2 guard designs" `Quick test_long_term_designs;
         Alcotest.test_case "M2 monotone in f" `Quick test_long_term_monotone_in_f;
         Alcotest.test_case "X3 convergence leak" `Quick test_convergence_leak;
         Alcotest.test_case "GI guard inference" `Quick test_guard_inference ]);
      ("parallel determinism",
       [ Alcotest.test_case "F3L jobs identity" `Quick
           test_path_changes_jobs_identical;
         Alcotest.test_case "fingerprint jobs identity" `Quick
           test_fingerprint_jobs_identical;
         Alcotest.test_case "fingerprint params identity" `Quick
           test_fingerprint_params_identity ]
       @ qsuite
           [ prop_compromise_jobs_identical; prop_long_term_jobs_identical;
             prop_as_exposure_jobs_identical ]) ]
